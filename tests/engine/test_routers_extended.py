"""Tests for the lottery and content-based routing policies."""

import pytest

from repro.engine.router import ContentBasedRouter, LotteryRouter
from repro.engine.stats import SelectivityEstimator

from tests.engine.test_query import paper_query


class TestLotteryRouter:
    def test_route_covers_all_targets(self):
        q = paper_query()
        r = LotteryRouter(q, seed=0)
        route = r.choose_route("A", SelectivityEstimator())
        assert sorted(route) == ["B", "C", "D"]

    def test_favours_selective_targets(self):
        q = paper_query()
        r = LotteryRouter(q, seed=1)
        est = SelectivityEstimator(alpha=1.0)
        for target, matches in [("B", 100), ("C", 100), ("D", 0)]:
            ap, _ = q.probe_spec({"A"}, target)
            est.observe(target, ap.mask, matches)
        firsts = [r.choose_route("A", est)[0] for _ in range(200)]
        assert firsts.count("D") > 120  # heavily weighted, not deterministic

    def test_still_samples_suboptimal_routes(self):
        q = paper_query()
        r = LotteryRouter(q, seed=2)
        est = SelectivityEstimator(alpha=1.0)
        for target, matches in [("B", 50), ("C", 50), ("D", 0)]:
            ap, _ = q.probe_spec({"A"}, target)
            est.observe(target, ap.mask, matches)
        firsts = {r.choose_route("A", est)[0] for _ in range(300)}
        assert firsts == {"B", "C", "D"}  # every order still gets probes

    def test_seeded_reproducible(self):
        q = paper_query()
        est = SelectivityEstimator()
        a = [LotteryRouter(q, seed=7).choose_route("A", est) for _ in range(1)]
        b = [LotteryRouter(q, seed=7).choose_route("A", est) for _ in range(1)]
        assert a == b

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            LotteryRouter(paper_query(), smoothing=0)


class TestContentBasedRouter:
    def test_route_covers_all_targets(self):
        q = paper_query()
        r = ContentBasedRouter(q, explore_prob=0.0, seed=0)
        route = r.choose_route("A", SelectivityEstimator(), {"AB": 1, "AC": 2, "AD": 3})
        assert sorted(route) == ["B", "C", "D"]

    def test_bucket_for_depends_on_value(self):
        q = paper_query()
        r = ContentBasedRouter(q, value_bits=4)
        buckets = {r.bucket_for({"AB": v}, "A", "B") for v in range(64)}
        assert len(buckets) > 1

    def test_none_item_buckets_to_zero(self):
        q = paper_query()
        r = ContentBasedRouter(q)
        assert r.bucket_for(None, "A", "B") == 0

    def test_routes_differ_by_content(self):
        """A value observed to explode on one join is routed around it."""
        q = paper_query()
        r = ContentBasedRouter(q, value_bits=2, explore_prob=0.0, seed=0)
        est = SelectivityEstimator(alpha=1.0, initial=5.0)
        # Find two AB values in different buckets.
        v_hot = next(v for v in range(64) if r.bucket_for({"AB": v}, "A", "B") == 0)
        v_cold = next(v for v in range(64) if r.bucket_for({"AB": v}, "A", "B") == 1)
        ap_b, _ = q.probe_spec({"A"}, "B")
        # Hot-value probes into B exploded; cold-value ones were cheap.
        for _ in range(50):
            r.observe_content("B", ap_b.mask, 0, 100)
            r.observe_content("B", ap_b.mask, 1, 0)
        route_hot = r.choose_route("A", est, {"AB": v_hot, "AC": 0, "AD": 0})
        route_cold = r.choose_route("A", est, {"AB": v_cold, "AC": 0, "AD": 0})
        assert route_cold[0] == "B"  # cheap for this value
        assert route_hot[0] != "B"  # routed around the hot value

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ContentBasedRouter(paper_query(), value_bits=0)
        with pytest.raises(ValueError):
            ContentBasedRouter(paper_query(), explore_prob=2.0)

    def test_runs_inside_engine(self):
        """Content-based routing drives a real scenario run."""
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=3))
        ex = sc.make_executor("amri:sria", capacity=1e9, memory_budget=1 << 30)
        ex.router = ContentBasedRouter(sc.query, seed=3)
        stats = ex.run(30, sc.make_generator())
        assert stats.outputs > 0
