"""Tests for the Figure 2 query-template parser."""

import pytest

from repro.engine.parser import QueryParseError, parse_query

PAPER_EXAMPLE = """
Select A.*, B.*, C.*
From StreamA A, StreamB B, StreamC C
Where A.A1 = B.A1 and B.A2 = C.A2
Window 10
"""


class TestPaperExample:
    def test_parses(self):
        q = parse_query(PAPER_EXAMPLE)
        assert q.stream_names == ("StreamA", "StreamB", "StreamC")
        assert q.window == 10
        assert len(q.predicates) == 2

    def test_jas_derivation(self):
        q = parse_query(PAPER_EXAMPLE)
        assert list(q.jas_for("StreamB").names) == ["A1", "A2"]
        assert list(q.jas_for("StreamA").names) == ["A1"]

    def test_aliases_resolve_to_stream_names(self):
        q = parse_query(PAPER_EXAMPLE)
        pred = q.predicates[0]
        assert pred.left_stream == "StreamA" and pred.right_stream == "StreamB"


class TestClauses:
    def test_case_insensitive_keywords(self):
        q = parse_query("SELECT a.*, b.* FROM s1 a, s2 b WHERE a.x = b.y WINDOW 5")
        assert q.window == 5

    def test_single_line(self):
        q = parse_query("select A.* , B.* from A, B where A.k = B.k window 3")
        assert q.stream_names == ("A", "B")

    def test_default_window(self):
        q = parse_query("select A.*, B.* from A, B where A.k = B.k", default_window=42)
        assert q.window == 42

    def test_alias_defaults_to_stream_name(self):
        q = parse_query("select A.* from A, B where A.k = B.k")
        assert set(q.stream_names) == {"A", "B"}

    def test_trailing_semicolon(self):
        q = parse_query("select A.* from A, B where A.k = B.k window 7;")
        assert q.window == 7

    def test_star_projection(self):
        q = parse_query("select * from A, B where A.k = B.k")
        assert len(q.predicates) == 1

    def test_explicit_schema_extends_attributes(self):
        q = parse_query(
            "select A.* from A, B where A.k = B.k",
            schemas={"A": ["k", "payload"]},
        )
        assert "payload" in q.schema("A").attributes
        # B inferred
        assert q.schema("B").attributes == ("k",)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(QueryParseError):
            parse_query("select * where A.k = B.k")

    def test_missing_where(self):
        with pytest.raises(QueryParseError, match="WHERE"):
            parse_query("select A.* from A, B")

    def test_non_equi_join_predicate(self):
        # "A.k < B.k" is not an equi-join; it parses as a filter attempt whose
        # "constant" is not a literal, and is rejected.
        with pytest.raises(QueryParseError, match="not a number or quoted string"):
            parse_query("select A.* from A, B where A.k < B.k")

    def test_unknown_alias_in_where(self):
        with pytest.raises(QueryParseError, match="unknown alias"):
            parse_query("select A.* from A, B where A.k = Z.k")

    def test_unknown_alias_in_select(self):
        with pytest.raises(QueryParseError, match="unknown alias"):
            parse_query("select Z.* from A, B where A.k = B.k")

    def test_duplicate_alias(self):
        with pytest.raises(QueryParseError, match="duplicate alias"):
            parse_query("select A.* from S1 A, S2 A where A.k = A.j")

    def test_bad_window(self):
        with pytest.raises(QueryParseError, match="WINDOW"):
            parse_query("select A.* from A, B where A.k = B.k window soon")

    def test_bad_projection(self):
        with pytest.raises(QueryParseError, match="unsupported projection"):
            parse_query("select median(A.k) from A, B where A.k = B.k")

    def test_schema_missing_predicate_attr(self):
        with pytest.raises(QueryParseError, match="lacks predicate attributes"):
            parse_query(
                "select A.* from A, B where A.k = B.k",
                schemas={"A": ["other"]},
            )

    def test_malformed_from_entry(self):
        with pytest.raises(QueryParseError, match="malformed FROM"):
            parse_query("select A.* from A as x y, B where A.k = B.k")


class TestEndToEnd:
    def test_parsed_query_executes(self):
        """A parsed query drives the real engine."""
        from repro.core.assessment import SRIA
        from repro.core.bit_index import make_bit_index
        from repro.core.tuner import NullTuner
        from repro.engine.executor import AMRExecutor
        from repro.engine.resources import ResourceMeter
        from repro.engine.router import GreedyAdaptiveRouter
        from repro.engine.stem import SteM
        from repro.engine.tuples import StreamTuple

        q = parse_query("select L.*, R.* from L, R where L.k = R.k window 6")
        stems = {
            s: SteM(
                s,
                q.jas_for(s),
                make_bit_index(q.jas_for(s), [3]),
                q.window,
                NullTuner(SRIA(q.jas_for(s))),
            )
            for s in q.stream_names
        }
        executor = AMRExecutor(
            q,
            stems,
            GreedyAdaptiveRouter(q, explore_prob=0.0),
            ResourceMeter(capacity=1e9, memory_budget=1 << 30),
            arrival_rates={s: 1.0 for s in q.stream_names},
        )
        plan = {
            0: [StreamTuple("L", 0, {"k": 1})],
            1: [StreamTuple("R", 1, {"k": 1})],
        }
        stats = executor.run(3, lambda t: plan.get(t, []))
        assert stats.outputs == 1


class TestSelectionPredicates:
    def test_filter_parsed(self):
        q = parse_query(
            "select A.* from A, B where A.k = B.k and A.prio > 5 window 4"
        )
        assert len(q.filters) == 1
        f = q.filters[0]
        assert (f.stream, f.attr, f.op, f.value) == ("A", "prio", ">", 5)

    def test_filter_constant_types(self):
        q = parse_query(
            "select A.* from A, B where A.k = B.k and A.x = 1.5 and B.tag = 'hot'"
        )
        values = {f.attr: f.value for f in q.filters}
        assert values == {"x": 1.5, "tag": "hot"}

    def test_filter_attr_in_inferred_schema(self):
        q = parse_query("select A.* from A, B where A.k = B.k and A.prio >= 2")
        assert "prio" in q.schema("A").attributes

    def test_passes_filters(self):
        q = parse_query("select A.* from A, B where A.k = B.k and A.prio != 0")
        assert q.passes_filters("A", {"k": 1, "prio": 3})
        assert not q.passes_filters("A", {"k": 1, "prio": 0})
        assert q.passes_filters("B", {"k": 1})  # unfiltered stream

    def test_only_filters_rejected(self):
        with pytest.raises(QueryParseError, match="no join predicates"):
            parse_query("select A.* from A, B where A.prio > 5")

    def test_filter_pushdown_in_engine(self):
        from repro.core.assessment import SRIA
        from repro.core.bit_index import make_bit_index
        from repro.core.tuner import NullTuner
        from repro.engine.executor import AMRExecutor
        from repro.engine.resources import ResourceMeter
        from repro.engine.router import GreedyAdaptiveRouter
        from repro.engine.stem import SteM
        from repro.engine.tuples import StreamTuple

        q = parse_query(
            "select L.*, R.* from L, R where L.k = R.k and L.prio > 1 window 6"
        )
        stems = {
            s: SteM(
                s,
                q.jas_for(s),
                make_bit_index(q.jas_for(s), [3]),
                q.window,
                NullTuner(SRIA(q.jas_for(s))),
            )
            for s in q.stream_names
        }
        executor = AMRExecutor(
            q,
            stems,
            GreedyAdaptiveRouter(q, explore_prob=0.0),
            ResourceMeter(capacity=1e9, memory_budget=1 << 30),
            arrival_rates={s: 1.0 for s in q.stream_names},
        )
        plan = {
            0: [StreamTuple("L", 0, {"k": 1, "prio": 0})],  # filtered out
            1: [StreamTuple("L", 1, {"k": 1, "prio": 9})],  # admitted
            2: [StreamTuple("R", 2, {"k": 1})],
        }
        stats = executor.run(4, lambda t: plan.get(t, []))
        assert stats.filtered == 1
        assert stats.outputs == 1
        assert stems["L"].size == 1  # the filtered tuple never entered the state


class TestAggregates:
    def test_count_star(self):
        q = parse_query("select count(*) from A, B where A.k = B.k")
        assert len(q.aggregates) == 1
        assert q.aggregates[0].func == "count" and q.aggregates[0].attr is None

    def test_attribute_aggregates(self):
        q = parse_query(
            "select count(*), sum(A.x), avg(B.y), min(A.x), max(B.y) "
            "from A, B where A.k = B.k"
        )
        funcs = [a.func for a in q.aggregates]
        assert funcs == ["count", "sum", "avg", "min", "max"]

    def test_aggregate_attr_lands_in_schema(self):
        q = parse_query("select sum(A.x) from A, B where A.k = B.k")
        assert "x" in q.schema("A").attributes

    def test_mixed_projection_and_aggregate(self):
        q = parse_query("select A.*, count(*) from A, B where A.k = B.k")
        assert len(q.aggregates) == 1

    def test_unknown_alias_in_aggregate(self):
        with pytest.raises(QueryParseError, match="unknown alias"):
            parse_query("select sum(Z.x) from A, B where A.k = B.k")

    def test_plain_query_has_no_aggregates(self):
        q = parse_query("select A.* from A, B where A.k = B.k")
        assert q.aggregates == ()
