"""Graceful-degradation stage semantics: shed order, expiry boundaries,
and the permanence of scan fallback — exercised directly against
:class:`~repro.engine.kernel.ShedDegradeStage` and through full runs."""

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.executor import AMRExecutor, ExecutorConfig
from repro.engine.kernel import EngineContext, ShedDegradeStage, TickState
from repro.engine.query import JoinPredicate, Query
from repro.engine.resources import DegradationPolicy, ResourceMeter
from repro.engine.router import FixedRouter
from repro.engine.stem import SteM
from repro.engine.stream import StreamSchema
from repro.engine.tuples import StreamTuple


def two_stream_query(window=5):
    streams = [StreamSchema("A", ("k", "pa")), StreamSchema("B", ("k", "pb"))]
    return Query(streams, [JoinPredicate("A", "k", "B", "k")], window=window)


def make_ctx(
    *,
    window=5,
    capacity=1e9,
    memory_budget=1 << 30,
    degradation=None,
):
    query = two_stream_query(window=window)
    stems = {}
    for s in query.stream_names:
        jas = query.jas_for(s)
        stems[s] = SteM(
            s,
            jas,
            make_bit_index(jas, [4] * len(jas)),
            query.window,
            NullTuner(SRIA(jas)),
        )
    router = FixedRouter(
        {s: [t for t in query.stream_names if t != s] for s in query.stream_names}
    )
    meter = ResourceMeter(capacity=capacity, memory_budget=memory_budget)
    return EngineContext(
        query=query,
        stems=stems,
        router=router,
        meter=meter,
        arrival_rates={s: 1.0 for s in query.stream_names},
        domain_bits={},
        config=ExecutorConfig(),
        degradation=degradation,
    )


def queued(stream, tick, k=1):
    values = {"k": k, "pa" if stream == "A" else "pb": 0}
    return StreamTuple(stream, tick, values)


class TestShedOrder:
    def test_shed_drops_oldest_first(self):
        """Shedding pops from the left: the oldest backlogged requests go,
        the newest survive."""
        policy = DegradationPolicy(shed_floor=2)
        ctx = make_ctx(degradation=policy)
        items = [queued("A", t) for t in range(6)]
        ctx.queue.extend(items)
        breakdown = ctx.memory_breakdown()
        stage = ShedDegradeStage()
        # A soft limit low enough that every sheddable request must go.
        stage.shed_backlog(ctx, tick=6, breakdown=breakdown, soft=0)
        assert list(ctx.queue) == items[4:]  # newest shed_floor=2 survive
        assert ctx.stats.shed_tuples == 4

    def test_shed_respects_floor_exactly(self):
        policy = DegradationPolicy(shed_floor=16)
        ctx = make_ctx(degradation=policy)
        ctx.queue.extend(queued("A", t) for t in range(16))
        before = list(ctx.queue)
        out = ShedDegradeStage().shed_backlog(
            ctx, tick=0, breakdown=ctx.memory_breakdown(), soft=0
        )
        assert list(ctx.queue) == before  # nothing sheddable at the floor
        assert out == ctx.memory_breakdown()
        assert ctx.stats.shed_tuples == 0

    def test_shed_on_empty_backlog_is_a_noop(self):
        policy = DegradationPolicy(shed_floor=0)
        ctx = make_ctx(degradation=policy)
        breakdown = ctx.memory_breakdown()
        out = ShedDegradeStage().shed_backlog(ctx, tick=0, breakdown=breakdown, soft=0)
        assert out == breakdown
        assert ctx.stats.shed_tuples == 0
        assert not ctx.queue

    def test_shed_stops_once_under_soft_limit(self):
        """Sheds the ceil of the excess, not the whole backlog."""
        policy = DegradationPolicy(shed_floor=0)
        ctx = make_ctx(degradation=policy)
        ctx.queue.extend(queued("A", t) for t in range(10))
        per = ctx.meter.params.queue_item_bytes
        breakdown = ctx.memory_breakdown()
        # Ask to free exactly three requests' worth (plus a sliver → ceil to 3).
        soft = breakdown.total - 3 * per + 1
        ShedDegradeStage().shed_backlog(ctx, tick=0, breakdown=breakdown, soft=soft)
        assert ctx.stats.shed_tuples == 3
        assert len(ctx.queue) == 7
        assert ctx.queue[0].arrived_at == 3  # 0,1,2 (the oldest) went


class TestExpiryBoundaries:
    def run_executor(self, window, plan, ticks):
        ctx = make_ctx(window=window)
        query = ctx.query

        def arrivals(tick):
            return [
                StreamTuple(s, tick, v)
                for s, v in plan.get(tick, [])
            ]

        ex = AMRExecutor(
            query,
            ctx.stems,
            ctx.router,
            ctx.meter,
            arrival_rates={s: 1.0 for s in query.stream_names},
        )
        return ex.run(ticks, arrivals)

    def test_tuple_dies_exactly_at_window_boundary(self):
        """A tuple inserted at t expires at t+window sharp: a probe arriving
        on the boundary tick no longer sees it..."""
        plan = {
            0: [("A", {"k": 1, "pa": 0})],
            3: [("B", {"k": 1, "pb": 0})],
        }
        stats = self.run_executor(window=3, plan=plan, ticks=5)
        assert stats.outputs == 0

    def test_tuple_alive_one_tick_before_boundary(self):
        """...while a probe one tick earlier still joins with it."""
        plan = {
            0: [("A", {"k": 1, "pa": 0})],
            2: [("B", {"k": 1, "pb": 0})],
        }
        stats = self.run_executor(window=3, plan=plan, ticks=5)
        assert stats.outputs == 1

    def test_window_expire_is_inclusive_on_stem(self):
        ctx = make_ctx(window=4)
        stem = ctx.stems["A"]
        stem.insert(queued("A", 0), 0)
        stem.expire(3)
        assert len(stem.window) == 1  # expiry is 0+4, not yet due at 3
        stem.expire(4)
        assert len(stem.window) == 0  # due exactly at the boundary


class TestDegradePermanence:
    def degrade_heaviest(self, ctx):
        stage = ShedDegradeStage()
        breakdown = ctx.memory_breakdown()
        return stage.degrade_indexes(ctx, tick=0, breakdown=breakdown, budget=0)

    def fill(self, ctx, n=8):
        for t in range(n):
            for s in ("A", "B"):
                ctx.stems[s].insert(queued(s, t, k=t), t)

    def test_degrade_swaps_heaviest_index_to_scan(self):
        ctx = make_ctx(degradation=DegradationPolicy())
        self.fill(ctx)
        assert all(not stem.degraded for stem in ctx.stems.values())
        before = {s: stem.index.memory_bytes for s, stem in ctx.stems.items()}
        self.degrade_heaviest(ctx)
        assert all(stem.degraded for stem in ctx.stems.values())  # budget=0 → all fall
        assert ctx.stats.degradations == 2
        for name, stem in ctx.stems.items():
            assert stem.index.memory_bytes < before[name]  # structure released
            assert type(stem.index).__name__ == "ScanIndex"

    def test_degrade_does_not_recover_when_pressure_clears(self):
        """Scan fallback is permanent: expiring every tuple (pressure gone)
        never resurrects the index structure or the tuner."""
        ctx = make_ctx(degradation=DegradationPolicy())
        self.fill(ctx)
        self.degrade_heaviest(ctx)
        for stem in ctx.stems.values():
            stem.expire(10_000)  # drain all state — pressure fully gone
        audit = TickState(tick=1, duration=2, audit_due=True)
        ShedDegradeStage().run(ctx, audit)  # plenty of budget now
        for stem in ctx.stems.values():
            assert stem.degraded  # still degraded
            assert type(stem.index).__name__ == "ScanIndex"
            assert type(stem.tuner).__name__ == "NullTuner"

    def test_degraded_engine_still_joins(self):
        ctx = make_ctx(degradation=DegradationPolicy())
        self.fill(ctx, n=2)
        self.degrade_heaviest(ctx)
        ex = AMRExecutor(
            ctx.query,
            ctx.stems,
            ctx.router,
            ctx.meter,
            arrival_rates={s: 1.0 for s in ctx.query.stream_names},
        )
        # Arrivals must stay time-ordered past the pre-filled t=0..1 tuples.
        plan = {
            2: [("A", {"k": 77, "pa": 0})],
            3: [("B", {"k": 77, "pb": 0})],
        }
        stats = ex.run(
            5, lambda t: [StreamTuple(s, t, v) for s, v in plan.get(t, [])]
        )
        assert stats.outputs == 1

    def test_already_degraded_states_are_skipped(self):
        ctx = make_ctx(degradation=DegradationPolicy())
        self.fill(ctx)
        self.degrade_heaviest(ctx)
        assert ctx.stats.degradations == 2
        self.degrade_heaviest(ctx)  # second pass finds nothing to free
        assert ctx.stats.degradations == 2


class TestStageGating:
    def test_stage_skips_when_audit_not_due(self):
        ctx = make_ctx(degradation=DegradationPolicy(shed_floor=0))
        ctx.queue.extend(queued("A", t) for t in range(50))
        tick = TickState(tick=1, duration=10, audit_due=False)
        ShedDegradeStage().run(ctx, tick)
        assert len(ctx.queue) == 50  # untouched off the audit cadence
        assert tick.breakdown is None

    def test_stage_without_policy_only_measures(self):
        ctx = make_ctx(degradation=None)
        ctx.queue.extend(queued("A", t) for t in range(50))
        tick = TickState(tick=0, duration=10, audit_due=True)
        ShedDegradeStage().run(ctx, tick)
        assert len(ctx.queue) == 50
        assert tick.breakdown is not None
        assert tick.budget == ctx.meter.memory_budget


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
