"""Tests for the staged engine kernel (context, stages, schedulers, facade)."""

from pathlib import Path

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.executor import AMRExecutor, ExecutorConfig
from repro.engine.kernel import (
    SCHEDULERS,
    ArrivalStage,
    AuditStage,
    BacklogAwareScheduler,
    EngineContext,
    EngineKernel,
    ExpiryStage,
    FifoScheduler,
    RouteProbeStage,
    Scheduler,
    resolve_scheduler,
)
from repro.engine.query import JoinPredicate, Query
from repro.engine.resources import ResourceMeter
from repro.engine.router import FixedRouter
from repro.engine.stem import SteM
from repro.engine.stream import StreamSchema
from repro.engine.tracing import EventLog
from repro.engine.tuples import StreamTuple

ENGINE_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "engine"


def two_stream_query(window=5):
    streams = [StreamSchema("A", ("k", "pa")), StreamSchema("B", ("k", "pb"))]
    return Query(streams, [JoinPredicate("A", "k", "B", "k")], window=window)


def make_parts(query=None, *, capacity=1e9, memory_budget=1 << 30):
    query = query if query is not None else two_stream_query()
    stems = {}
    for s in query.stream_names:
        jas = query.jas_for(s)
        stems[s] = SteM(
            s,
            jas,
            make_bit_index(jas, [4] * len(jas)),
            query.window,
            NullTuner(SRIA(jas)),
        )
    router = FixedRouter(
        {s: [t for t in query.stream_names if t != s] for s in query.stream_names}
    )
    meter = ResourceMeter(capacity=capacity, memory_budget=memory_budget)
    return query, stems, router, meter


def make_executor(**kwargs):
    query, stems, router, meter = make_parts()
    return AMRExecutor(
        query,
        stems,
        router,
        meter,
        arrival_rates={s: 1.0 for s in query.stream_names},
        **kwargs,
    )


def arrivals_from(plan):
    def gen(tick):
        return [StreamTuple(s, tick, v) for s, v in plan.get(tick, [])]

    return gen


class TestSpendInvariant:
    """The _spend invariant holds *by construction*: exactly one call site
    touches the meter, and it attributes the identical float."""

    def kernel_sources(self):
        files = [ENGINE_DIR / "executor.py"]
        files += sorted((ENGINE_DIR / "kernel").glob("*.py"))
        return {f: f.read_text() for f in files}

    def test_meter_spend_called_only_in_context(self):
        hits = {
            f.name: src.count("meter.spend(")
            for f, src in self.kernel_sources().items()
            if "meter.spend(" in src
        }
        assert hits == {"context.py": 1}, (
            f"meter.spend must be called only by EngineContext.spend, found {hits}"
        )

    def test_metrics_charge_called_only_in_context(self):
        hits = {
            f.name: src.count("metrics.charge(")
            for f, src in self.kernel_sources().items()
            if "metrics.charge(" in src
        }
        assert hits == {"context.py": 1}, (
            f"metrics.charge must be paired with meter.spend in EngineContext.spend, found {hits}"
        )


class TestEngineContext:
    def test_rejects_missing_stem(self):
        query, stems, router, meter = make_parts()
        del stems["B"]
        with pytest.raises(ValueError, match="no SteM configured"):
            EngineContext(
                query=query,
                stems=stems,
                router=router,
                meter=meter,
                arrival_rates={},
                domain_bits={},
                config=ExecutorConfig(),
            )

    def test_spend_moves_clock_and_attribution_identically(self):
        from repro.engine.metrics import MetricsRegistry

        query, stems, router, meter = make_parts()
        registry = MetricsRegistry()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={},
            domain_bits={},
            config=ExecutorConfig(),
            metrics=registry,
        )
        meter.start_tick()
        for cost in (0.1, 0.2, 0.7, 12.5):
            ctx.spend(cost, "index", stream="A")
        assert registry.cost_total == meter.total_spent  # bit-for-bit

    def test_backlog_matches_queue(self):
        query, stems, router, meter = make_parts()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={},
            domain_bits={},
            config=ExecutorConfig(),
        )
        ctx.queue.append(StreamTuple("A", 0, {"k": 1, "pa": 0}))
        assert ctx.backlog == 1
        assert ctx._memory_breakdown().backlog == meter.params.queue_item_bytes


class TestBareKernel:
    """The kernel runs without the facade — context + stages is a full engine."""

    def test_bare_kernel_matches_facade(self):
        plan = {
            0: [("A", {"k": 1, "pa": 0})],
            1: [("B", {"k": 1, "pb": 0}), ("A", {"k": 2, "pa": 1})],
            3: [("B", {"k": 2, "pb": 1})],
        }
        ex = make_executor()
        facade_stats = ex.run(5, arrivals_from(plan))

        query, stems, router, meter = make_parts()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={s: 1.0 for s in query.stream_names},
            domain_bits={},
            config=ExecutorConfig(),
        )
        kernel_stats = EngineKernel(ctx).run(5, arrivals_from(plan))
        assert kernel_stats.outputs == facade_stats.outputs == 2
        assert kernel_stats.probes == facade_stats.probes
        assert kernel_stats.samples == facade_stats.samples

    def test_custom_pipeline_subset(self):
        """A pipeline without tuning/faults/degradation still joins."""
        query, stems, router, meter = make_parts()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={},
            domain_bits={},
            config=ExecutorConfig(),
        )
        stages = (ArrivalStage(), ExpiryStage(), RouteProbeStage(), AuditStage())
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 1, "pb": 0})]}
        stats = EngineKernel(ctx, stages).run(3, arrivals_from(plan))
        assert stats.outputs == 1
        assert stats.tuning_rounds == 0

    def test_bare_kernel_hosts_invariant_checker(self):
        from repro.engine.faults import InvariantChecker

        query, stems, router, meter = make_parts()
        checker = InvariantChecker()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={},
            domain_bits={},
            config=ExecutorConfig(),
            invariant_checker=checker,
        )
        EngineKernel(ctx).run(4, arrivals_from({0: [("A", {"k": 1, "pa": 0})]}))
        assert checker.ticks_checked == 4


class TestFacade:
    def test_exposes_kernel_parts(self):
        ex = make_executor()
        assert isinstance(ex.context, EngineContext)
        assert len(ex.stages) == 9
        assert isinstance(ex.kernel, EngineKernel)

    def test_attribute_writes_reach_the_context(self):
        ex = make_executor()
        log = EventLog()
        ex.event_log = log
        assert ex.context.event_log is log
        router = FixedRouter({"A": ["B"], "B": ["A"]})
        ex.router = router
        assert ex.context.router is router

    def test_queue_alias_is_the_context_queue(self):
        ex = make_executor()
        assert ex._queue is ex.context.queue
        assert ex._n_streams == 2

    def test_scheduler_kwarg_selects_pipeline_policy(self):
        ex = make_executor(scheduler="backlog")
        probe = next(s for s in ex.stages if isinstance(s, RouteProbeStage))
        assert isinstance(probe.scheduler, BacklogAwareScheduler)


class TestSchedulers:
    def test_resolve_defaults_to_fifo(self):
        assert isinstance(resolve_scheduler(None), FifoScheduler)
        assert isinstance(resolve_scheduler("fifo"), FifoScheduler)
        assert isinstance(resolve_scheduler("backlog"), BacklogAwareScheduler)

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("lifo")

    def test_resolve_rejects_non_scheduler(self):
        with pytest.raises(TypeError):
            resolve_scheduler(42)

    def test_instances_pass_through(self):
        sched = BacklogAwareScheduler()
        assert resolve_scheduler(sched) is sched

    def test_registry_names_match_protocol(self):
        for name, cls in SCHEDULERS.items():
            instance = cls()
            assert isinstance(instance, Scheduler)
            assert instance.name == name

    def _ctx_with_queue(self, items):
        query, stems, router, meter = make_parts()
        ctx = EngineContext(
            query=query,
            stems=stems,
            router=router,
            meter=meter,
            arrival_rates={},
            domain_bits={},
            config=ExecutorConfig(),
        )
        ctx.queue.extend(items)
        return ctx

    def test_fifo_drains_in_arrival_order(self):
        a0 = StreamTuple("A", 0, {"k": 1, "pa": 0})
        b1 = StreamTuple("B", 1, {"k": 1, "pb": 0})
        ctx = self._ctx_with_queue([a0, b1])
        sched = FifoScheduler()
        assert sched.select(ctx) is a0
        assert sched.select(ctx) is b1

    def test_backlog_aware_serves_deepest_stream_oldest_first(self):
        a0 = StreamTuple("A", 0, {"k": 1, "pa": 0})
        b1 = StreamTuple("B", 1, {"k": 1, "pb": 0})
        b2 = StreamTuple("B", 2, {"k": 2, "pb": 0})
        ctx = self._ctx_with_queue([a0, b1, b2])
        sched = BacklogAwareScheduler()
        assert sched.select(ctx) is b1  # B is deepest; its oldest goes first
        # Depths now tie at 1 each; the earliest-queued request wins.
        assert sched.select(ctx) is a0
        assert sched.select(ctx) is b2
        assert not ctx.queue

    def test_backlog_scheduler_run_is_deterministic(self):
        plan = {
            t: [("A", {"k": t % 3, "pa": 0}), ("B", {"k": t % 3, "pb": 0})]
            for t in range(8)
        }

        def run_once():
            query, stems, router, meter = make_parts(capacity=120.0)
            ex = AMRExecutor(
                query,
                stems,
                router,
                meter,
                arrival_rates={s: 1.0 for s in query.stream_names},
                scheduler="backlog",
            )
            stats = ex.run(8, arrivals_from(plan))
            return (stats.outputs, stats.probes, stats.matches, tuple(stats.samples))

        assert run_once() == run_once()

    def test_backlog_scheduler_preserves_cost_attribution(self):
        from repro.engine.metrics import MetricsRegistry

        registry = MetricsRegistry()
        ex = make_executor(scheduler="backlog", metrics=registry)
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 1, "pb": 0})]}
        ex.run(4, arrivals_from(plan))
        assert registry.snapshot().cost_total == ex.meter.total_spent
