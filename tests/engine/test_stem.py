"""Tests for the STeM operator."""

import pytest

from repro.core.access_pattern import JoinAttributeSet
from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.selector import IndexSelector
from repro.core.tuner import AMRITuner, NullTuner, TuningContext
from repro.engine.stem import SteM
from repro.engine.tuples import StreamTuple
from repro.indexes.base import CostParams
from repro.indexes.scan_index import ScanIndex


@pytest.fixture
def stem(jas3):
    index = make_bit_index(jas3, [2, 2, 2])
    return SteM("S", jas3, index, window=5, tuner=NullTuner(SRIA(jas3)))


def tupA(t, a=1, b=2, c=3):
    return StreamTuple("S", t, {"A": a, "B": b, "C": c})


class TestSteM:
    def test_insert_and_size(self, stem):
        stem.insert(tupA(0), 0)
        stem.insert(tupA(1), 1)
        assert stem.size == 2

    def test_expire_removes_from_index(self, stem, ap3):
        old = tupA(0, a=7)
        stem.insert(old, 0)
        stem.insert(tupA(6, a=7), 6)
        assert stem.expire(6) == 1
        out = stem.probe(ap3("A"), {"A": 7})
        assert len(out.matches) == 1

    def test_probe_records_pattern(self, stem, ap3):
        stem.probe(ap3("A", "B"), {"A": 1, "B": 2})
        stem.probe(ap3("A"), {"A": 1})
        assessor = stem.tuner.assessor
        assert assessor.n_requests == 2
        assert assessor.frequencies()[ap3("A", "B")] == 0.5

    def test_payload_bytes(self, stem):
        stem.insert(tupA(0), 0)
        assert stem.payload_bytes == CostParams.tuple_bytes

    def test_rejects_mismatched_index(self, jas3):
        other = JoinAttributeSet(["X"])
        with pytest.raises(ValueError):
            SteM("S", jas3, ScanIndex(other), window=5)

    def test_tune_delegates(self, jas3, ap3):
        index = make_bit_index(jas3, [0, 0, 6])
        tuner = AMRITuner(index, SRIA(jas3), IndexSelector(jas3, 12), theta=0.1)
        stem = SteM("S", jas3, index, window=10, tuner=tuner)
        for i in range(100):
            stem.insert(tupA(0, a=i % 40, b=i, c=i), 0)
        for _ in range(200):
            stem.probe(ap3("A"), {"A": 3})
        report = stem.tune(
            TuningContext(lambda_d=10, window=10, horizon=50, domain_bits={"A": 8})
        )
        assert report is not None and report.migrated
        assert stem.index.config.bits_for_attribute("A") > 0

    def test_default_tuner_is_null(self, jas3):
        stem = SteM("S", jas3, make_bit_index(jas3, [1, 1, 1]), window=3)
        assert stem.tune(TuningContext(lambda_d=1, window=1, horizon=1)) is None

    def test_describe(self, stem):
        assert "SteM(S" in stem.describe()
