"""Unit tests for the latency/SLO plane: tracker, snapshot merge, spec,
and the multi-window burn-rate monitor."""

import pickle

import pytest

from repro.engine.slo import (
    LATENCY_BUCKETS,
    SLO_BREACH,
    SLO_RECOVERED,
    LatencyTracker,
    SloMonitor,
    SloSpec,
    merge_latency_snapshots,
)
from repro.engine.tracing import registered_event_kinds


class TestLatencyTracker:
    def test_observe_accumulates_aggregate_and_per_stream(self):
        t = LatencyTracker(boundaries=(1.0, 4.0))
        t.observe("A", 0.0, outputs=2)
        t.observe("A", 3.0)
        t.observe("B", 9.0)
        assert t.bucket_counts == [1, 1, 1]
        assert t.per_stream["A"] == [1, 1, 0]
        assert t.per_stream["B"] == [0, 0, 1]
        assert t.count == 3
        assert t.total == 12.0
        assert t.results == 2
        assert t.results_latency_total == 0.0
        assert t.cumulative() == [(1.0, 1), (4.0, 2), (float("inf"), 3)]

    def test_threshold_counts_violations(self):
        t = LatencyTracker(threshold=4.0)
        t.observe("A", 4.0)  # at threshold: not a violation (<=)
        t.observe("A", 4.5)
        assert (t.observed, t.violations) == (2, 1)

    def test_without_threshold_nothing_violates(self):
        t = LatencyTracker()
        t.observe("A", 1e9)
        t.observe_shed("A", 5.0)
        assert t.violations == 0

    def test_shed_consumes_budget_but_not_histograms(self):
        t = LatencyTracker(threshold=4.0)
        t.observe_shed("A", 2.0)
        assert t.count == 0 and sum(t.bucket_counts) == 0
        assert (t.observed, t.violations, t.shed) == (1, 1, 1)
        assert t.shed_by_stream == {"A": 1}

    def test_reservoir_keeps_first_n_exactly(self):
        t = LatencyTracker(reservoir_capacity=3)
        for v in (5.0, 1.0, 2.0, 9.0):
            t.observe("A", v)
        assert t.reservoir == [5.0, 1.0, 2.0]
        assert t.reservoir_dropped == 1

    def test_quantile_matches_exact_on_small_run(self):
        t = LatencyTracker(boundaries=(1.0, 2.0, 4.0, 8.0))
        values = [0.5, 1.5, 2.5, 3.0, 6.0]
        for v in values:
            t.observe("A", v)
        snap = t.snapshot()
        exact = snap.exact_quantile(0.5)
        est = snap.quantile(0.5)
        assert exact == sorted(values)[2]
        # ±1 bucket width around the median (bucket (2, 4]).
        assert abs(est - exact) <= 2.0

    def test_rejects_bad_boundaries_and_capacity(self):
        with pytest.raises(ValueError):
            LatencyTracker(boundaries=())
        with pytest.raises(ValueError):
            LatencyTracker(boundaries=(4.0, 1.0))
        with pytest.raises(ValueError):
            LatencyTracker(reservoir_capacity=-1)

    def test_default_boundaries(self):
        assert LatencyTracker().boundaries == LATENCY_BUCKETS


class TestLatencySnapshot:
    def populated(self):
        t = LatencyTracker(boundaries=(1.0, 4.0), threshold=4.0)
        t.observe("A", 0.5, outputs=1)
        t.observe("B", 3.0)
        t.observe("B", 9.0)
        t.observe_shed("A", 6.0)
        return t.snapshot()

    def test_snapshot_is_frozen_and_picklable(self):
        snap = self.populated()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        with pytest.raises(AttributeError):
            snap.count = 0

    def test_mean_and_violation_fraction(self):
        snap = self.populated()
        assert snap.mean == pytest.approx(12.5 / 3)
        # 9.0 violated, plus the shed request: 2 of 4 observations.
        assert snap.violation_fraction == pytest.approx(0.5)

    def test_empty_snapshot_mean_is_none(self):
        snap = LatencyTracker().snapshot()
        assert snap.mean is None
        assert snap.quantile(0.5) is None
        assert snap.violation_fraction == 0.0

    def test_exact_quantile_none_after_reservoir_overflow(self):
        t = LatencyTracker(reservoir_capacity=1)
        t.observe("A", 1.0)
        assert t.snapshot().exact_quantile(0.5) == 1.0
        t.observe("A", 2.0)
        assert t.snapshot().exact_quantile(0.5) is None

    def test_stream_quantile_unknown_stream_is_none(self):
        snap = self.populated()
        assert snap.stream_quantile("A", 0.5) is not None
        assert snap.stream_quantile("nope", 0.5) is None

    def test_to_records_shapes(self):
        records = self.populated().to_records()
        assert records[0]["record"] == "latency"
        assert records[0]["scope"] == "aggregate"
        assert records[0]["observed"] == 4
        streams = [r["stream"] for r in records if r["scope"] == "stream"]
        assert streams == ["A", "B"]


class TestMergeLatencySnapshots:
    def tracker(self, *observations, threshold=4.0):
        t = LatencyTracker(boundaries=(1.0, 4.0), threshold=threshold)
        for stream, latency in observations:
            t.observe(stream, latency)
        return t

    def test_single_merge_is_identity(self):
        snap = self.tracker(("A", 0.5), ("B", 9.0)).snapshot()
        assert merge_latency_snapshots([snap]) == snap

    def test_merge_equals_single_tracker_over_union(self):
        """The tentpole merge contract: per-partition trackers merge into
        exactly what one tracker over the combined stream would hold."""
        obs = [("A", 0.5), ("B", 3.0), ("A", 9.0), ("B", 0.0)]
        parts = [
            self.tracker(*obs[:2]).snapshot(),
            self.tracker(*obs[2:]).snapshot(),
        ]
        merged = merge_latency_snapshots(parts)
        single = self.tracker(*obs).snapshot()
        # Reservoirs concatenate in partition order, not arrival order —
        # same multiset, so every quantile and counter still agrees.
        assert sorted(merged.reservoir) == sorted(single.reservoir)
        for field in (
            "boundaries", "buckets", "total", "count", "per_stream",
            "threshold", "observed", "violations", "results", "shed",
            "shed_by_stream",
        ):
            assert getattr(merged, field) == getattr(single, field), field

    def test_shed_counters_union_sum(self):
        a = self.tracker()
        a.observe_shed("A", 1.0)
        b = self.tracker()
        b.observe_shed("A", 2.0)
        b.observe_shed("B", 3.0)
        merged = merge_latency_snapshots([a.snapshot(), b.snapshot()])
        assert merged.shed == 3
        assert merged.shed_by_stream == (("A", 2), ("B", 1))

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            merge_latency_snapshots([])

    def test_mismatched_boundaries_rejected(self):
        a = LatencyTracker(boundaries=(1.0,)).snapshot()
        b = LatencyTracker(boundaries=(2.0,)).snapshot()
        with pytest.raises(ValueError, match="boundaries"):
            merge_latency_snapshots([a, b])

    def test_mismatched_thresholds_rejected(self):
        a = LatencyTracker(threshold=4.0).snapshot()
        b = LatencyTracker(threshold=8.0).snapshot()
        with pytest.raises(ValueError, match="threshold"):
            merge_latency_snapshots([a, b])

    def test_none_threshold_defers_to_armed_partitions(self):
        a = LatencyTracker(threshold=4.0).snapshot()
        b = LatencyTracker().snapshot()
        assert merge_latency_snapshots([a, b]).threshold == 4.0


class TestSloSpec:
    @pytest.mark.parametrize(
        "text",
        ["p95<=8@120", "p99<=16@240/20", "p95<=8@120:degrade", "p99.9<=32@600/50:degrade"],
    )
    def test_parse_describe_round_trip(self, text):
        spec = SloSpec.parse(text)
        assert spec.describe() == text
        assert SloSpec.parse(spec.describe()) == spec

    def test_parse_fields(self):
        spec = SloSpec.parse("p95<=8@120/10:degrade")
        assert spec.quantile == pytest.approx(0.95)
        assert spec.threshold_ticks == 8.0
        assert spec.window == 120
        assert spec.fast_window == 10
        assert spec.degrade_on_breach

    def test_error_budget_and_default_fast_window(self):
        spec = SloSpec.parse("p95<=8@120")
        assert spec.error_budget == pytest.approx(0.05)
        assert spec.fast == 10  # window // 12
        assert SloSpec.parse("p95<=8@5").fast == 1  # floor of 1

    @pytest.mark.parametrize(
        "bad",
        ["", "p95<=8", "95<=8@120", "p95<8@120", "p0<=8@120", "p100<=8@120",
         "p95<=8@120/121", "p95<=8@0", "p95<=8@120:shed"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)

    def test_event_kinds_registered(self):
        kinds = registered_event_kinds()
        assert SLO_BREACH == "slo_breach" and SLO_BREACH in kinds
        assert SLO_RECOVERED == "slo_recovered" and SLO_RECOVERED in kinds


class TestSloMonitor:
    def drive(self, monitor, tracker, ticks, violating):
        """Feed `ticks` ticks of 10 observations, `violating` of them bad."""
        out = []
        for _ in range(ticks):
            for i in range(10):
                tracker.observe("A", 9.0 if i < violating else 0.0)
            out.append(monitor.end_tick(len(out), tracker))
        return out

    def test_quiet_run_never_breaches(self):
        spec = SloSpec.parse("p95<=8@12/3")
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        monitor = SloMonitor(spec)
        transitions = self.drive(monitor, tracker, 20, violating=0)
        assert transitions == [None] * 20
        assert monitor.burn_rates() == {3: 0.0, 12: 0.0}
        assert monitor.budget_consumed() == 0.0

    def test_sustained_violations_breach_then_recover(self):
        spec = SloSpec.parse("p95<=8@12/3")
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        monitor = SloMonitor(spec)
        # 10% violating = burn rate 2.0 against a 5% budget.
        hot = self.drive(monitor, tracker, 5, violating=1)
        assert hot[0] == "breach"  # both windows hot immediately
        assert hot[1:] == [None] * 4  # no re-fire while breached
        assert monitor.breached and monitor.breaches == 1
        # Cool the fast window: recovery fires as soon as it drains.
        cool = self.drive(monitor, tracker, 4, violating=0)
        assert "recover" in cool
        assert not monitor.breached and monitor.recoveries == 1
        assert [kind for _, kind in monitor.transitions] == ["breach", "recover"]

    def test_single_tick_blip_does_not_breach_slow_window(self):
        spec = SloSpec.parse("p95<=8@10/1")
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        monitor = SloMonitor(spec)
        # Fill the slow window with clean ticks first.
        self.drive(monitor, tracker, 10, violating=0)
        # One tick with 4/10 violating: the fast window burns at 8.0 but
        # the slow window holds 4/100 violating = burn 0.8 < 1.0 → no breach.
        blip = self.drive(monitor, tracker, 1, violating=4)
        assert blip == [None]
        assert not monitor.breached

    def test_burn_rate_is_violating_fraction_over_budget(self):
        spec = SloSpec.parse("p95<=8@4")
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        monitor = SloMonitor(spec)
        self.drive(monitor, tracker, 4, violating=2)  # 20% violating
        assert monitor.burn_rate(4) == pytest.approx(0.2 / 0.05)
        assert monitor.budget_consumed() == pytest.approx(4.0)
        with pytest.raises(ValueError):
            monitor.burn_rate(0)

    def test_idle_ticks_burn_nothing(self):
        spec = SloSpec.parse("p95<=8@4")
        monitor = SloMonitor(spec)
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        assert monitor.end_tick(0, tracker) is None
        assert monitor.burn_rate(4) == 0.0
