"""Tests for the virtual clock and memory budgeting."""

import pytest

from repro.engine.resources import (
    MemoryBreakdown,
    MemoryBudgetExceeded,
    ResourceMeter,
)
from repro.indexes.base import Accountant, CostParams


class TestResourceMeter:
    def test_start_tick_grants_capacity(self):
        m = ResourceMeter(capacity=100)
        m.start_tick()
        assert m.tick_budget == 100

    def test_spend_draws_down(self):
        m = ResourceMeter(capacity=100)
        m.start_tick()
        m.spend(30)
        assert m.tick_budget == 70
        assert m.total_spent == 30
        assert not m.exhausted

    def test_overdraft_carries_into_next_tick(self):
        m = ResourceMeter(capacity=100)
        m.start_tick()
        m.spend(150)  # operations are never split
        assert m.exhausted
        m.start_tick()
        assert m.tick_budget == 50  # deficit carried

    def test_budget_never_exceeds_capacity(self):
        m = ResourceMeter(capacity=100)
        m.start_tick()
        m.spend(10)
        m.start_tick()  # unused budget does not accumulate
        assert m.tick_budget == 100

    def test_rejects_negative_spend(self):
        m = ResourceMeter(capacity=100)
        with pytest.raises(ValueError):
            m.spend(-1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ResourceMeter(capacity=0)
        with pytest.raises(ValueError):
            ResourceMeter(memory_budget=0)

    def test_charge_accountant_delta(self):
        m = ResourceMeter(capacity=1000)
        m.start_tick()
        acct = Accountant()
        before = acct.snapshot()
        acct.hashes += 5
        acct.tuples_examined += 10
        cost = m.charge_accountant_delta(acct, before)
        params = CostParams()
        assert cost == pytest.approx(5 * params.c_hash + 10 * params.c_compare)
        assert m.total_spent == pytest.approx(cost)


class TestMemoryBudget:
    def test_breakdown_total(self):
        b = MemoryBreakdown(state_payload=10, index_structures=20, backlog=30, statistics=5)
        assert b.total == 65

    def test_check_under_budget_passes(self):
        m = ResourceMeter(memory_budget=100)
        m.check_memory(MemoryBreakdown(state_payload=99), at_tick=3)

    def test_check_over_budget_raises_with_details(self):
        m = ResourceMeter(memory_budget=100)
        with pytest.raises(MemoryBudgetExceeded) as exc:
            m.check_memory(MemoryBreakdown(backlog=200), at_tick=7)
        assert exc.value.at_tick == 7
        assert exc.value.used == 200
        assert "backlog=200" in str(exc.value)

    def test_exact_budget_passes(self):
        m = ResourceMeter(memory_budget=100)
        m.check_memory(MemoryBreakdown(state_payload=100), at_tick=0)
