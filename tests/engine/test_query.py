"""Tests for the SPJ query model: JAS derivation and probe specs."""

import pytest

from repro.core.access_pattern import AccessPattern
from repro.engine.query import JoinPredicate, Query
from repro.engine.stream import StreamSchema


def paper_query(window=10):
    """The Section V topology: 4 streams, one shared attribute per pair."""
    pairs = ["AB", "AC", "AD", "BC", "BD", "CD"]
    streams = [
        StreamSchema(s, tuple(p for p in pairs if s in p)) for s in "ABCD"
    ]
    predicates = [JoinPredicate(p[0], p, p[1], p) for p in pairs]
    return Query(streams, predicates, window=window)


class TestJoinPredicate:
    def test_involves_and_attr(self):
        p = JoinPredicate("A", "x", "B", "y")
        assert p.involves("A") and p.involves("B") and not p.involves("C")
        assert p.attr_of("A") == "x" and p.attr_of("B") == "y"

    def test_other_side(self):
        p = JoinPredicate("A", "x", "B", "y")
        assert p.other_side("A") == ("B", "y")
        assert p.other_side("B") == ("A", "x")

    def test_rejects_non_equality(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "x", "B", "y", op="<")

    def test_rejects_self_join(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "x", "A", "y")

    def test_attr_of_unknown_stream(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "x", "B", "y").attr_of("C")

    def test_str(self):
        assert str(JoinPredicate("A", "x", "B", "y")) == "A.x = B.y"


class TestQueryValidation:
    def test_rejects_unknown_stream_in_predicate(self):
        with pytest.raises(ValueError, match="unknown stream"):
            Query(
                [StreamSchema("A", ("x",))],
                [JoinPredicate("A", "x", "B", "y")],
                window=5,
            )

    def test_rejects_unknown_attribute(self):
        with pytest.raises(ValueError, match="no attribute"):
            Query(
                [StreamSchema("A", ("x",)), StreamSchema("B", ("y",))],
                [JoinPredicate("A", "z", "B", "y")],
                window=5,
            )

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            paper_query(window=0)

    def test_rejects_duplicate_streams(self):
        with pytest.raises(ValueError):
            Query(
                [StreamSchema("A", ("x",)), StreamSchema("A", ("x",))],
                [],
                window=5,
            )

    def test_rejects_stream_without_predicate(self):
        with pytest.raises(ValueError, match="no join predicate"):
            Query(
                [StreamSchema("A", ("x",)), StreamSchema("B", ("x",)), StreamSchema("C", ("c",))],
                [JoinPredicate("A", "x", "B", "x")],
                window=5,
            )


class TestJASDerivation:
    def test_paper_topology(self):
        q = paper_query()
        # Each state's JAS: the 3 pair attributes naming that stream.
        assert list(q.jas_for("A").names) == ["AB", "AC", "AD"]
        assert list(q.jas_for("C").names) == ["AC", "BC", "CD"]

    def test_neighbours(self):
        q = paper_query()
        assert q.neighbours("A") == ("B", "C", "D")

    def test_predicates_between(self):
        q = paper_query()
        preds = q.predicates_between("A", "B")
        assert len(preds) == 1
        assert preds[0].attr_of("A") == "AB"


class TestProbeSpec:
    """Route position determines the access pattern — the core AMR fact."""

    def test_first_hop_single_attribute(self):
        q = paper_query()
        ap, bindings = q.probe_spec({"A"}, "B")
        assert ap == AccessPattern.from_attributes(q.jas_for("B"), ["AB"])
        assert bindings == (("AB", "AB"),)

    def test_second_hop_two_attributes(self):
        q = paper_query()
        ap, _ = q.probe_spec({"A", "C"}, "B")
        assert set(ap.attributes) == {"AB", "BC"}

    def test_last_hop_all_attributes(self):
        q = paper_query()
        ap, _ = q.probe_spec({"A", "C", "D"}, "B")
        assert set(ap.attributes) == {"AB", "BC", "BD"}

    def test_rejects_already_joined_target(self):
        q = paper_query()
        with pytest.raises(ValueError):
            q.probe_spec({"A", "B"}, "B")

    def test_rejects_cross_product(self):
        streams = [
            StreamSchema("A", ("x",)),
            StreamSchema("B", ("x", "y")),
            StreamSchema("C", ("y",)),
        ]
        preds = [JoinPredicate("A", "x", "B", "x"), JoinPredicate("B", "y", "C", "y")]
        q = Query(streams, preds, window=5)
        with pytest.raises(ValueError, match="no predicate binds"):
            q.probe_spec({"A"}, "C")

    def test_probe_values_resolution(self):
        q = paper_query()
        ap, bindings = q.probe_spec({"A"}, "B")
        values = q.probe_values(bindings, {"AB": 42, "AC": 1, "AD": 2})
        assert values == {"AB": 42}

    def test_probe_values_cross_attribute_names(self):
        # Differently named attributes on the two sides.
        streams = [StreamSchema("A", ("ka",)), StreamSchema("B", ("kb",))]
        q = Query(streams, [JoinPredicate("A", "ka", "B", "kb")], window=5)
        ap, bindings = q.probe_spec({"A"}, "B")
        assert bindings == (("kb", "ka"),)
        assert q.probe_values(bindings, {"ka": 9}) == {"kb": 9}
