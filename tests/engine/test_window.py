"""Tests for sliding-window bookkeeping."""

import pytest

from repro.engine.tuples import StreamTuple
from repro.engine.window import SlidingWindow


def tup(t):
    return StreamTuple("A", t, {"x": t})


class TestSlidingWindow:
    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_add_and_len(self):
        w = SlidingWindow(10)
        w.add(tup(0), 0)
        w.add(tup(1), 1)
        assert len(w) == 2

    def test_expiry_boundary(self):
        w = SlidingWindow(5)
        a = tup(0)
        w.add(a, 0)  # expires at tick 5
        assert w.expire(4) == []
        assert w.expire(5) == [a]
        assert len(w) == 0

    def test_expire_returns_in_order(self):
        w = SlidingWindow(3)
        items = [tup(t) for t in range(5)]
        for t, item in enumerate(items):
            w.add(item, t)
        expired = w.expire(4)  # expiry ticks 3 and 4
        assert expired == items[:2]

    def test_iteration_excludes_expired(self):
        w = SlidingWindow(2)
        a, b = tup(0), tup(3)
        w.add(a, 0)
        w.add(b, 3)
        w.expire(3)
        assert list(w) == [b]

    def test_oldest_expiry(self):
        w = SlidingWindow(7)
        assert w.oldest_expiry() is None
        w.add(tup(2), 2)
        assert w.oldest_expiry() == 9

    def test_expire_empty(self):
        assert SlidingWindow(3).expire(100) == []

    def test_repeated_expire_idempotent(self):
        w = SlidingWindow(1)
        w.add(tup(0), 0)
        assert len(w.expire(10)) == 1
        assert w.expire(10) == []


class TestCountWindow:
    def make(self, capacity=3):
        from repro.engine.window import CountWindow

        return CountWindow(capacity)

    def test_rejects_bad_capacity(self):
        import pytest as _pytest
        from repro.engine.window import CountWindow

        with _pytest.raises(ValueError):
            CountWindow(0)

    def test_evicts_oldest_beyond_capacity(self):
        w = self.make(2)
        a, b, c = tup(0), tup(1), tup(2)
        assert w.add(a, 0) == []
        assert w.add(b, 1) == []
        assert w.add(c, 2) == [a]
        assert list(w) == [b, c]

    def test_never_expires_by_time(self):
        w = self.make(2)
        w.add(tup(0), 0)
        assert w.expire(1000) == []
        assert len(w) == 1

    def test_oldest_expiry_none(self):
        assert self.make().oldest_expiry() is None


class TestSlidingWindowProtocol:
    def test_add_returns_empty_eviction_list(self):
        w = SlidingWindow(5)
        assert w.add(tup(0), 0) == []


class TestSteMWithCountWindow:
    def test_insert_evicts_from_index(self):
        from repro.core.access_pattern import AccessPattern, JoinAttributeSet
        from repro.core.bit_index import make_bit_index
        from repro.engine.stem import SteM
        from repro.engine.tuples import StreamTuple
        from repro.engine.window import CountWindow

        jas = JoinAttributeSet(["k"])
        stem = SteM("S", jas, make_bit_index(jas, [3]), CountWindow(2))
        items = [StreamTuple("S", t, {"k": 1}) for t in range(4)]
        for t, item in enumerate(items):
            stem.insert(item, t)
        assert stem.size == 2
        ap = AccessPattern.from_attributes(jas, ["k"])
        out = stem.probe(ap, {"k": 1})
        assert sorted(m.arrived_at for m in out.matches) == [2, 3]
