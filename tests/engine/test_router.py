"""Tests for Eddy-style routing policies."""

import pytest

from repro.engine.query import JoinPredicate, Query
from repro.engine.router import FixedRouter, GreedyAdaptiveRouter
from repro.engine.stats import SelectivityEstimator
from repro.engine.stream import StreamSchema

from tests.engine.test_query import paper_query


class TestFixedRouter:
    def test_returns_configured_route(self):
        r = FixedRouter({"A": ["B", "C", "D"]})
        assert r.choose_route("A", SelectivityEstimator()) == ("B", "C", "D")

    def test_unknown_source_raises(self):
        r = FixedRouter({})
        with pytest.raises(KeyError):
            r.choose_route("A", SelectivityEstimator())


class TestGreedyAdaptiveRouter:
    def test_route_covers_all_other_streams(self):
        q = paper_query()
        r = GreedyAdaptiveRouter(q, explore_prob=0.0, seed=0)
        route = r.choose_route("A", SelectivityEstimator())
        assert sorted(route) == ["B", "C", "D"]

    def test_greedy_prefers_selective_first_hop(self):
        q = paper_query()
        r = GreedyAdaptiveRouter(q, explore_prob=0.0, seed=0)
        est = SelectivityEstimator(alpha=1.0)
        # Probing D from {A} is cheap, B explodes.
        ap_b, _ = q.probe_spec({"A"}, "B")
        ap_c, _ = q.probe_spec({"A"}, "C")
        ap_d, _ = q.probe_spec({"A"}, "D")
        est.observe("B", ap_b.mask, 50)
        est.observe("C", ap_c.mask, 5)
        est.observe("D", ap_d.mask, 1)
        route = r.choose_route("A", est)
        assert route[0] == "D"

    def test_greedy_uses_hop_specific_patterns(self):
        """The second hop's estimate keys on the 2-attribute pattern."""
        q = paper_query()
        r = GreedyAdaptiveRouter(q, explore_prob=0.0, seed=0)
        est = SelectivityEstimator(alpha=1.0, initial=10.0)
        # First hop: D is cheapest.
        ap_d, _ = q.probe_spec({"A"}, "D")
        est.observe("D", ap_d.mask, 0)
        # From {A, D}: the 2-attr pattern into B is cheap, into C expensive.
        ap_b2, _ = q.probe_spec({"A", "D"}, "B")
        ap_c2, _ = q.probe_spec({"A", "D"}, "C")
        est.observe("B", ap_b2.mask, 1)
        est.observe("C", ap_c2.mask, 9)
        assert r.choose_route("A", est) == ("D", "B", "C")

    def test_exploration_produces_other_orders(self):
        q = paper_query()
        r = GreedyAdaptiveRouter(q, explore_prob=1.0, seed=0)
        est = SelectivityEstimator()
        routes = {r.choose_route("A", est) for _ in range(50)}
        assert len(routes) > 1  # pure exploration: many permutations

    def test_seeded_reproducibility(self):
        q = paper_query()
        est = SelectivityEstimator()
        a = GreedyAdaptiveRouter(q, explore_prob=0.5, seed=42)
        b = GreedyAdaptiveRouter(q, explore_prob=0.5, seed=42)
        assert [a.choose_route("A", est) for _ in range(20)] == [
            b.choose_route("A", est) for _ in range(20)
        ]

    def test_rejects_bad_explore_prob(self):
        with pytest.raises(ValueError):
            GreedyAdaptiveRouter(paper_query(), explore_prob=1.5)

    def test_two_stream_query_trivial_route(self):
        streams = [StreamSchema("A", ("x",)), StreamSchema("B", ("x",))]
        q = Query(streams, [JoinPredicate("A", "x", "B", "x")], window=5)
        r = GreedyAdaptiveRouter(q, explore_prob=0.0)
        assert r.choose_route("A", SelectivityEstimator()) == ("B",)

    def test_chain_query_defers_unconnected(self):
        # A-B-C chain: from A, C is unreachable until B joins.
        streams = [
            StreamSchema("A", ("x",)),
            StreamSchema("B", ("x", "y")),
            StreamSchema("C", ("y",)),
        ]
        q = Query(
            streams,
            [JoinPredicate("A", "x", "B", "x"), JoinPredicate("B", "y", "C", "y")],
            window=5,
        )
        r = GreedyAdaptiveRouter(q, explore_prob=0.0)
        assert r.choose_route("A", SelectivityEstimator()) == ("B", "C")
