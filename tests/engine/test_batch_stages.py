"""Edge-case tests for the batch data plane (kernel.batch).

The differential suite proves whole-run bit-identity statistically; this
suite pins the awkward boundaries one at a time: empty batches, batches of
one, a batch spanning a window-expiry boundary, and a batch larger than a
count-window's capacity (eviction-before-insert must hold per element, not
per batch).
"""

from __future__ import annotations

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.executor import AMRExecutor
from repro.engine.kernel import (
    BatchArrivalStage,
    BatchExpiryStage,
    BatchRouteProbeStage,
    DEFAULT_BATCH_SIZE,
    TupleBatch,
    batched_stages,
)
from repro.engine.query import JoinPredicate, Query
from repro.engine.resources import ResourceMeter
from repro.engine.router import FixedRouter
from repro.engine.stem import SteM
from repro.engine.stream import StreamSchema
from repro.engine.tuples import StreamTuple
from repro.engine.window import CountWindow
from repro.experiments.golden import stats_fingerprint
from repro.indexes.scan_index import ScanIndex
from repro.storage import StateStore


def two_stream_query(window=5):
    streams = [StreamSchema("A", ("k", "pa")), StreamSchema("B", ("k", "pb"))]
    return Query(streams, [JoinPredicate("A", "k", "B", "k")], window=window)


def make_executor(window=5, *, batch_size=None, sink=None, stem_window=None):
    """A tiny two-stream engine; ``stem_window`` is a factory for a
    per-state window object (e.g. ``lambda: CountWindow(3)``) independent
    of the query's time window."""
    query = two_stream_query(window)
    stems = {}
    for s in query.stream_names:
        jas = query.jas_for(s)
        stems[s] = SteM(
            s,
            jas,
            make_bit_index(jas, [4] * len(jas)),
            stem_window() if stem_window is not None else query.window,
            NullTuner(SRIA(jas)),
        )
    router = FixedRouter(
        {s: [t for t in query.stream_names if t != s] for s in query.stream_names}
    )
    meter = ResourceMeter(capacity=1e9, memory_budget=1 << 30)
    return AMRExecutor(
        query,
        stems,
        router,
        meter,
        arrival_rates={s: 1.0 for s in query.stream_names},
        batch_size=batch_size,
        output_sink=sink,
    )


def arrivals_from(plan):
    def gen(tick):
        return [StreamTuple(s, tick, v) for s, v in plan.get(tick, [])]

    return gen


def join_plan(ticks, per_tick=3):
    """Both streams, overlapping keys, every tick — guarantees matches."""
    return {
        t: [("A", {"k": i % 2, "pa": i}) for i in range(per_tick)]
        + [("B", {"k": i % 2, "pb": i}) for i in range(per_tick)]
        for t in range(ticks)
    }


def run_pair(ticks, plan, window=5, *, batch_size, stem_window=None):
    """The same workload through the serial and the batched pipeline."""
    results = []
    for bs in (None, batch_size):
        sink = []
        ex = make_executor(window, batch_size=bs, sink=sink.extend, stem_window=stem_window)
        stats = ex.run(ticks, arrivals_from(plan))
        results.append((ex, stats, sink))
    return results


# --------------------------------------------------------------------- #
# TupleBatch assembly


class TestTupleBatch:
    def test_empty_batch(self):
        batch = TupleBatch.assemble("A", [], ("k", "pa"))
        assert len(batch) == 0
        assert list(batch.timestamps) == []
        for column in batch.hash_columns.values():
            assert len(column) == 0

    def test_columns_are_parallel(self):
        items = [StreamTuple("A", t, {"k": t % 3, "pa": t}) for t in range(5)]
        batch = TupleBatch.assemble("A", items, ("k",))
        assert len(batch) == 5
        assert list(batch.timestamps) == [0, 1, 2, 3, 4]
        col = batch.hash_columns["k"]
        assert len(col) == 5
        # Same value -> same hash, in item order (0,1,2,0,1).
        assert col[0] == col[3] and col[1] == col[4]
        assert len({col[0], col[1], col[2]}) == 3

    def test_missing_attribute_column_is_skipped(self):
        items = [StreamTuple("A", 0, {"k": 1}), StreamTuple("A", 1, {"pa": 2})]
        batch = TupleBatch.assemble("A", items, ("k", "pa"))
        assert batch.hash_columns == {}  # neither column is total

    def test_fragment_column_masks_each_hash(self):
        items = [StreamTuple("A", t, {"k": t}) for t in range(4)]
        batch = TupleBatch.assemble("A", items, ("k",))
        frags = batch.fragment_column("k", 3)
        assert list(frags) == [h & 0b111 for h in batch.hash_columns["k"]]
        assert list(batch.fragment_column("k", 0)) == [0, 0, 0, 0]


# --------------------------------------------------------------------- #
# empty batch through the index layer


class TestEmptyBatch:
    def test_search_batch_empty_is_empty_and_free(self, jas3, ap3):
        for index in (make_bit_index(jas3, [2, 2, 2]), ScanIndex(jas3)):
            before = index.accountant.snapshot()
            assert index.search_batch(ap3("A"), []) == []
            assert index.accountant == before

    def test_probe_batch_empty_is_empty_and_free(self, jas3, ap3):
        store = StateStore("S", jas3, ScanIndex(jas3), window=5)
        store.insert(StreamTuple("S", 0, {"A": 1, "B": 2, "C": 3}), 0)
        before = store.index.accountant.snapshot()
        assert store.probe_batch(ap3("A"), []) == []
        assert store.index.accountant == before


# --------------------------------------------------------------------- #
# batch of one


class TestBatchOfOne:
    def test_search_batch_of_one_equals_serial_search(self, jas3, ap3):
        def populated(index):
            for i in range(8):
                index.insert(StreamTuple("S", i, {"A": i % 3, "B": 2, "C": 3}))
            return index

        serial = populated(make_bit_index(jas3, [2, 2, 2]))
        batched = populated(make_bit_index(jas3, [2, 2, 2]))
        out_s = serial.search(ap3("A"), {"A": 1})
        [out_b] = batched.search_batch(ap3("A"), [{"A": 1}])
        assert out_b.matches == out_s.matches
        assert out_b.buckets_visited == out_s.buckets_visited
        assert out_b.tuples_examined == out_s.tuples_examined
        assert out_b.used_full_scan == out_s.used_full_scan
        assert batched.accountant == serial.accountant

    def test_pipeline_at_batch_size_one(self):
        (_, s_stats, s_out), (_, b_stats, b_out) = run_pair(
            6, join_plan(6), batch_size=1
        )
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)
        assert b_out == s_out


# --------------------------------------------------------------------- #
# batch spanning a window-expiry boundary


class TestWindowExpiryBoundary:
    def test_batch_spanning_expiry_matches_serial(self):
        # window=2 over 8 ticks: most of the run probes states that expired
        # tuples this tick; batch size exceeds any hop's probe column.
        (s_ex, s_stats, s_out), (b_ex, b_stats, b_out) = run_pair(
            8, join_plan(8), window=2, batch_size=64
        )
        deletes = sum(st.index.accountant.deletes for st in b_ex.stems.values())
        assert deletes > 0, "no expiry happened; the case is vacuous"
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)
        assert b_out == s_out
        assert b_ex.meter.total_spent == s_ex.meter.total_spent
        for name in s_ex.stems:
            assert (
                b_ex.stems[name].index.accountant == s_ex.stems[name].index.accountant
            )


# --------------------------------------------------------------------- #
# batch larger than a count-window's capacity


class TestCountWindowCapacity:
    CAPACITY = 3

    def test_eviction_precedes_insert_per_element(self):
        """A 12-tuple arrival batch through a capacity-3 count window must
        evict-then-insert one element at a time: the index never holds
        capacity + 1 tuples, even transiently inside the batch."""
        ex = make_executor(
            batch_size=64, stem_window=lambda: CountWindow(self.CAPACITY)
        )
        peaks = {}
        for name, stem in ex.stems.items():
            original = stem.index.insert
            sizes = []

            def spy(item, _orig=original, _sizes=sizes, _stem=stem):
                _orig(item)
                _sizes.append(_stem.index.size)

            stem.index.insert = spy
            peaks[name] = sizes

        plan = {0: [("A", {"k": i % 2, "pa": i}) for i in range(12)]}
        ex.run(1, arrivals_from(plan))

        assert len(peaks["A"]) == 12  # every element actually inserted
        assert max(peaks["A"]) == self.CAPACITY
        assert ex.stems["A"].size == self.CAPACITY

    def test_overflowing_batch_matches_serial(self):
        plan = {
            t: [("A", {"k": i % 2, "pa": i}) for i in range(8)]
            + [("B", {"k": i % 2, "pb": i}) for i in range(8)]
            for t in range(4)
        }
        (_, s_stats, s_out), (_, b_stats, b_out) = run_pair(
            4, plan, batch_size=64, stem_window=lambda: CountWindow(self.CAPACITY)
        )
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)
        assert b_out == s_out


# --------------------------------------------------------------------- #
# stage construction


class TestBatchStageConstruction:
    def test_batched_stages_shape(self):
        stages = batched_stages()
        assert isinstance(stages[0], BatchArrivalStage)
        assert isinstance(stages[1], BatchExpiryStage)
        assert isinstance(stages[2], BatchRouteProbeStage)
        assert stages[2].batch_size == DEFAULT_BATCH_SIZE
        assert len(stages) == 9

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_rejects_non_positive_batch_size(self, bad):
        with pytest.raises(ValueError, match="batch_size"):
            BatchRouteProbeStage(batch_size=bad)

    @pytest.mark.parametrize("bad", [2.5, "64", None, True])
    def test_rejects_non_int_batch_size(self, bad):
        with pytest.raises(TypeError, match="batch_size"):
            BatchRouteProbeStage(batch_size=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_executor_rejects_bad_batch_size(self, bad):
        with pytest.raises(ValueError, match="batch_size"):
            make_executor(batch_size=bad)
