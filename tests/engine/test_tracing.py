"""Tests for structured engine event tracing."""

import pytest

from repro.engine.tracing import EngineEvent, EventLog


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(5, "tune", "A", saving=1.5)
        log.record(10, "migration", "A", old="x", new="y")
        log.record(10, "migration", "B")
        log.record(40, "death", None, used=99)
        assert len(log) == 4
        assert len(log.events("migration")) == 2
        assert len(log.events("migration", stream="A")) == 1
        assert log.events("death")[0].detail["used"] == 99

    def test_migrations_by_stream(self):
        log = EventLog()
        log.record(1, "migration", "A")
        log.record(2, "migration", "A")
        log.record(3, "migration", "B")
        assert log.migrations_by_stream() == {"A": 2, "B": 1}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            EngineEvent(1, "explosion")

    def test_to_lines(self):
        log = EventLog()
        log.record(7, "migration", "C", old="a", new="b")
        line = log.to_lines()[0]
        assert "t=7" in line and "[C]" in line and "old=a" in line


class TestTracedRun:
    def test_executor_records_migrations_and_death(self):
        from repro.experiments.harness import train_initial_state
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor("amri:cdia-highest", capacity=1e9, memory_budget=1 << 30)
        ex.event_log = log
        stats = ex.run(130, sc.make_generator())
        migrations = log.events("migration")
        assert len(migrations) == stats.migrations
        assert all(e.stream in sc.query.stream_names for e in migrations)

    def test_death_event_recorded(self):
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor("scan", capacity=100.0, memory_budget=150_000)
        ex.event_log = log
        stats = ex.run(200, sc.make_generator())
        assert stats.died_at is not None
        deaths = log.events("death")
        assert len(deaths) == 1
        assert deaths[0].tick == stats.died_at
