"""Tests for structured engine event tracing."""

import json
import threading

import pytest

from repro.engine.tracing import (
    EVENT_KINDS,
    EngineEvent,
    EventLog,
    register_event_kind,
    registered_event_kinds,
)


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(5, "tune", "A", saving=1.5)
        log.record(10, "migration", "A", old="x", new="y")
        log.record(10, "migration", "B")
        log.record(40, "death", None, used=99)
        assert len(log) == 4
        assert len(log.events("migration")) == 2
        assert len(log.events("migration", stream="A")) == 1
        assert log.events("death")[0].detail["used"] == 99

    def test_migrations_by_stream(self):
        log = EventLog()
        log.record(1, "migration", "A")
        log.record(2, "migration", "A")
        log.record(3, "migration", "B")
        assert log.migrations_by_stream() == {"A": 2, "B": 1}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            EngineEvent(1, "explosion")

    def test_robustness_kinds_accepted(self):
        log = EventLog()
        log.record(3, "fault", "A", fault="burst", factor=3)
        log.record(9, "shed", None, count=40)
        log.record(12, "degrade", "B", to="scan")
        assert [e.kind for e in log] == ["fault", "shed", "degrade"]
        assert log.events("fault")[0].detail["fault"] == "burst"

    def test_counts_by_kind(self):
        log = EventLog()
        log.record(1, "fault", "A", fault="stall")
        log.record(2, "fault", "B", fault="stall")
        log.record(3, "shed", None, count=5)
        assert log.counts_by_kind() == {"fault": 2, "shed": 1}

    def test_to_lines(self):
        log = EventLog()
        log.record(7, "migration", "C", old="a", new="b")
        line = log.to_lines()[0]
        assert "t=7" in line and "[C]" in line and "old=a" in line

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.record(7, "migration", "C", old="a", new="b")
        log.record(9, "shed", None, count=40)
        records = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert records == [
            {"record": "event", "tick": 7, "kind": "migration", "stream": "C",
             "detail": {"old": "a", "new": "b"}},
            {"record": "event", "tick": 9, "kind": "shed", "stream": None,
             "detail": {"count": 40}},
        ]

    def test_empty_log_exports_empty_jsonl(self):
        assert EventLog().to_jsonl() == ""


class TestEventKindRegistry:
    def test_builtins_registered(self):
        assert set(EVENT_KINDS) <= registered_event_kinds()

    def test_register_new_kind(self):
        assert "checkpoint" not in registered_event_kinds()
        try:
            assert register_event_kind("checkpoint") == "checkpoint"
            event = EngineEvent(4, "checkpoint", "A", {"reason": "test"})
            assert event.kind == "checkpoint"
            # Registration is idempotent.
            register_event_kind("checkpoint")
        finally:
            # Keep the registry clean for other tests.
            from repro.engine import tracing

            tracing._REGISTERED_KINDS.discard("checkpoint")

    def test_unregistered_kind_still_rejected(self):
        with pytest.raises(ValueError):
            EngineEvent(1, "checkpoint2")

    def test_rejects_malformed_kind_names(self):
        with pytest.raises(ValueError):
            register_event_kind("")
        with pytest.raises(ValueError):
            register_event_kind("has space")

    def test_registry_view_is_immutable(self):
        kinds = registered_event_kinds()
        assert isinstance(kinds, frozenset)

    def test_concurrent_registration_is_safe(self):
        names = [f"stress_kind_{i}" for i in range(8)]
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def register(name):
            barrier.wait()
            try:
                for _ in range(200):  # idempotent re-registration from all threads
                    register_event_kind(name)
                    register_event_kind("stress_kind_shared")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=register, args=(n,)) for n in names]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert set(names) <= registered_event_kinds()
            assert "stress_kind_shared" in registered_event_kinds()
        finally:
            from repro.engine import tracing

            for name in names + ["stress_kind_shared"]:
                tracing._REGISTERED_KINDS.discard(name)


class TestTracedRun:
    def test_executor_records_migrations_and_death(self):
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor("amri:cdia-highest", capacity=1e9, memory_budget=1 << 30)
        ex.event_log = log
        stats = ex.run(130, sc.make_generator())
        migrations = log.events("migration")
        assert len(migrations) == stats.migrations
        assert all(e.stream in sc.query.stream_names for e in migrations)

    def test_death_event_recorded(self):
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor("scan", capacity=100.0, memory_budget=150_000)
        ex.event_log = log
        stats = ex.run(200, sc.make_generator())
        assert stats.died_at is not None
        deaths = log.events("death")
        assert len(deaths) == 1
        assert deaths[0].tick == stats.died_at

    def test_fault_events_match_injector_count(self):
        from repro.workloads.scenarios import PaperScenario, ScenarioParams

        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor(
            "scan",
            capacity=1e9,
            memory_budget=1 << 30,
            event_log=log,
            faults="tuning",
            fault_seed=2,
        )
        stats = ex.run(60, sc.make_generator())
        assert stats.faults_injected == len(log.events("fault"))
        assert stats.faults_injected > 0
