"""Tests for the metrics registry, spans, flight recorder, and exporters."""

import json
import math
import pickle

import pytest

from repro.engine.metrics import (
    COST_METRIC,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    cost_label_key,
    quantile_from_buckets,
)
from repro.engine.metrics_export import (
    from_csv,
    from_jsonl,
    spans_to_jsonl,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_metrics,
    write_trace,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_histogram_le_semantics(self):
        h = Histogram(boundaries=(1.0, 4.0))
        for v in (0.5, 1.0, 2.0, 4.0, 100.0):
            h.observe(v)
        # le semantics: 1.0 lands in the le=1 bucket, 4.0 in le=4.
        assert h.bucket_counts == [2, 2, 1]
        cum = h.cumulative()
        assert cum == [(1.0, 2), (4.0, 4), (float("inf"), 5)]
        assert h.total == pytest.approx(107.5)
        assert h.count == 5

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=())
        with pytest.raises(ValueError):
            Histogram(boundaries=(4.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))


class TestRegistrySeries:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("probes_total", stream="A")
        b = reg.counter("probes_total", stream="A")
        assert a is b
        assert reg.counter("probes_total", stream="B") is not a
        assert len(reg) == 2

    def test_label_canonicalisation(self):
        reg = MetricsRegistry()
        # Order of keyword labels never matters; None labels are dropped.
        a = reg.counter("x", stream="A", phase="probe")
        b = reg.counter("x", phase="probe", stream="A")
        c = reg.counter("x", stream="A", phase="probe", index_kind=None)
        assert a is b is c
        assert cost_label_key("index", stream="A") == (
            ("component", "index"),
            ("stream", "A"),
        )

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("n")
        with pytest.raises(ValueError, match="is a counter"):
            reg.histogram("n")
        # Also on the fast path, when the exact series already exists.
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("n")

    def test_histogram_buckets_bound_at_first_use(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", buckets=(1.0, 10.0), stream="A")
        h2 = reg.histogram("lat", buckets=(5.0, 50.0), stream="B")  # ignored
        assert h1.boundaries == h2.boundaries == (1.0, 10.0)

    def test_charge_updates_cost_total_and_series(self):
        reg = MetricsRegistry()
        reg.charge(2.5, "index", stream="A", index_kind="bit_address", phase="probe")
        reg.charge(1.5, "index", stream="A", index_kind="bit_address", phase="probe")
        reg.charge(1.0, "router", phase="decide")
        assert reg.cost_total == 5.0
        snap = reg.snapshot()
        probe = snap.get(
            COST_METRIC, component="index", stream="A",
            index_kind="bit_address", phase="probe",
        )
        assert probe is not None and probe.value == 4.0
        assert snap.sum_values(COST_METRIC) == 5.0
        assert snap.cost_by("component") == {("index",): 4.0, ("router",): 1.0}
        # Missing labels group under '-'.
        assert snap.cost_by("stream") == {("A",): 4.0, ("-",): 1.0}

    def test_snapshot_is_frozen_sorted_and_picklable(self):
        reg = MetricsRegistry()
        reg.counter("z_last").inc()
        reg.counter("a_first", stream="B").inc()
        reg.counter("a_first", stream="A").inc()
        snap = reg.snapshot()
        keys = [(s.name, s.labels) for s in snap.series]
        assert keys == sorted(keys)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap


class TestSpans:
    def test_ids_are_sequential_and_parents_link(self):
        reg = MetricsRegistry()
        tick = reg.start_span("tick", 5)
        child = reg.start_span("tuple", 5, parent=tick, stream="A")
        assert (tick.span_id, child.span_id) == (0, 1)
        assert child.parent_id == 0
        rec = reg.end_span(child, 7, status="processed")
        assert rec.duration_ticks == 2
        assert dict(rec.attrs) == {"stream": "A", "status": "processed"}
        reg.end_span(tick, 5)
        assert [r.name for r in reg.flight.spans()] == ["tuple", "tick"]

    def test_double_end_and_backwards_end_rejected(self):
        reg = MetricsRegistry()
        span = reg.start_span("tick", 5)
        with pytest.raises(ValueError):
            reg.end_span(span, 3)
        reg.end_span(span, 5)
        with pytest.raises(ValueError):
            reg.end_span(span, 6)

    def test_point_span_is_zero_duration(self):
        reg = MetricsRegistry()
        rec = reg.point_span("death", 42, used=99)
        assert rec.start_tick == rec.end_tick == 42
        assert rec.duration_ticks == 0

    def test_span_record_to_dict_prefixes_attrs(self):
        rec = SpanRecord(1, "tuple", 3, 5, parent_id=0, attrs=(("stream", "A"),))
        d = rec.to_dict()
        assert d["attr_stream"] == "A"
        assert d["span_id"] == 1 and d["parent_id"] == 0


class TestFlightRecorder:
    def test_ring_keeps_last_capacity_and_counts_drops(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.add(SpanRecord(i, "tick", i, i))
        assert len(fr) == 3
        assert fr.recorded == 10
        assert fr.dropped == 7
        assert [r.span_id for r in fr.spans()] == [7, 8, 9]

    def test_since_tick_and_last_ticks(self):
        fr = FlightRecorder(capacity=100)
        for i in range(10):
            fr.add(SpanRecord(i, "tick", i, i + 1))
        assert [r.span_id for r in fr.since_tick(9)] == [8, 9]
        # last_ticks(3): spans still active at tick >= 10 - 3 + 1 = 8.
        assert [r.span_id for r in fr.last_ticks(3)] == [7, 8, 9]
        assert FlightRecorder(capacity=5).last_ticks(3) == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


@pytest.fixture
def populated_registry():
    reg = MetricsRegistry()
    reg.charge(2.5, "index", stream="A", index_kind="bit_address", phase="probe")
    reg.charge(0.2, "router", phase="decide")
    reg.counter("probes_total", "probe count", stream="A").inc(7)
    reg.gauge("backlog", "queued items").set(3)
    h = reg.histogram("probe_matches", "matches per probe", buckets=(1.0, 4.0))
    for v in (0, 1, 3, 9):
        h.observe(v)
    span = reg.start_span("tick", 1)
    reg.end_span(span, 1, cost=2.7)
    return reg


class TestExporters:
    def test_jsonl_round_trip(self, populated_registry):
        snap = populated_registry.snapshot()
        records = from_jsonl(to_jsonl(snap))
        series = [r for r in records if r["record"] == "series"]
        assert len(series) == len(snap.series)
        aggregate = records[-1]
        assert aggregate["record"] == "aggregate"
        assert aggregate["cost_total"] == snap.cost_total
        hist = next(r for r in series if r["name"] == "probe_matches")
        assert hist["buckets"] == [[1.0, 2], [4.0, 3], ["+Inf", 4]]
        assert hist["count"] == 4

    def test_csv_round_trip_is_lossless(self, populated_registry):
        snap = populated_registry.snapshot()
        records = from_csv(to_csv(snap))
        assert len(records) == len(snap.series)
        by_key = {(r["name"], tuple(sorted(r["labels"].items()))): r for r in records}
        for s in snap.series:
            rec = by_key[(s.name, s.labels)]
            if s.kind == "histogram":
                assert rec["total"] == s.total and rec["count"] == s.count
            else:
                # repr round-trip: floats come back bit-identical.
                assert rec["value"] == s.value

    def test_prometheus_families_and_histogram(self, populated_registry):
        text = to_prometheus(populated_registry.snapshot())
        lines = text.splitlines()
        assert "# HELP probes_total probe count" in lines
        assert "# TYPE probes_total counter" in lines
        assert "# TYPE backlog gauge" in lines
        assert "# TYPE probe_matches histogram" in lines
        assert 'probes_total{stream="A"} 7.0' in lines
        assert 'probe_matches_bucket{le="1.0"} 2' in lines
        assert 'probe_matches_bucket{le="+Inf"} 4' in lines
        assert "probe_matches_sum 13.0" in lines
        assert "probe_matches_count 4" in lines
        # Families are alphabetical and each HELP precedes its TYPE.
        families = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert families == sorted(families)

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird", stream='A"quoted\\back\nline').inc()
        text = to_prometheus(reg.snapshot())
        assert 'stream="A\\"quoted\\\\back\\nline"' in text
        # The rendered line must stay on one physical line.
        (series_line,) = [l for l in text.splitlines() if l.startswith("weird{")]
        assert series_line.endswith("} 1.0")

    def test_jsonl_replaces_non_finite_floats(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.inf)
        records = from_jsonl(to_jsonl(reg.snapshot()))
        assert records[0]["value"] is None

    def test_write_metrics_and_trace_files(self, populated_registry, tmp_path):
        snap = populated_registry.snapshot()
        mpath = write_metrics(tmp_path / "m.jsonl", snap)
        assert from_jsonl(mpath.read_text())[-1]["record"] == "aggregate"
        ppath = write_metrics(tmp_path / "m.prom", snap, "prometheus")
        assert ppath.read_text().startswith("# HELP")
        tpath = write_trace(tmp_path / "t.jsonl", snap)
        spans = [json.loads(l) for l in tpath.read_text().splitlines()]
        assert spans and spans[0]["name"] == "tick"
        with pytest.raises(ValueError):
            write_metrics(tmp_path / "m.xml", snap, "xml")


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        h = Histogram(boundaries=(1.0, 4.0))
        assert h.quantile(0.5) is None
        assert quantile_from_buckets((), 0.5) is None

    def test_single_bucket_interpolates_linearly(self):
        h = Histogram(boundaries=(10.0,))
        for _ in range(4):
            h.observe(3.0)
        # All mass in [0, 10]: rank q*4 interpolates across that width.
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_bucket_clamps_to_last_finite_boundary(self):
        h = Histogram(boundaries=(1.0, 4.0))
        for v in (0.5, 2.0, 100.0, 200.0):
            h.observe(v)
        # p99 falls in the +Inf bucket; the estimate clamps to le=4.0
        # rather than inventing an upper edge.
        assert h.quantile(0.99) == 4.0

    def test_all_mass_in_overflow_without_finite_bucket(self):
        # Only the +Inf bucket has mass and there is no finite boundary
        # below it to clamp to: the estimate is undefined.
        assert quantile_from_buckets(((float("inf"), 3),), 0.5) is None

    def test_monotone_in_q(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0, 8.0))
        for v in (0.2, 0.9, 1.5, 3.0, 3.5, 6.0, 20.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)]
        assert qs == sorted(qs)

    def test_estimate_within_one_bucket_width(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0, 8.0, 16.0))
        values = [0.5, 1.5, 1.7, 3.0, 3.2, 5.0, 7.0, 9.0, 12.0, 15.0]
        for v in values:
            h.observe(v)
        exact = sorted(values)[len(values) // 2]
        est = h.quantile(0.5)
        assert abs(est - exact) <= 4.0  # the bucket width around the median

    def test_rejects_out_of_range_q(self):
        h = Histogram(boundaries=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_series_snapshot_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 4.0))
        for v in (0.5, 2.0, 3.0):
            h.observe(v)
        snap = reg.snapshot()
        series = next(s for s in snap.series if s.name == "lat")
        assert series.quantile(0.5) == h.quantile(0.5)
        reg.counter("c").inc()
        counter = next(s for s in reg.snapshot().series if s.name == "c")
        assert counter.quantile(0.5) is None


class TestPrometheusGoldenText:
    def test_exact_exposition_text(self):
        """Conformance lock: the full rendered exposition, byte for byte.

        Covers HELP/TYPE headers, alphabetical family order, escaped label
        values, cumulative ``_bucket`` series ending in ``+Inf``, and the
        ``_sum``/``_count`` pair.
        """
        reg = MetricsRegistry()
        reg.counter("requests_total", "total requests", stream='A"x\\y').inc(3)
        reg.gauge("backlog", "queued items").set(2)
        h = reg.histogram("lat", "latency ticks", buckets=(1.0, 4.0))
        for v in (0.5, 2.0, 9.0):
            h.observe(v)
        expected = "\n".join(
            [
                "# HELP backlog queued items",
                "# TYPE backlog gauge",
                "backlog 2.0",
                "# HELP lat latency ticks",
                "# TYPE lat histogram",
                'lat_bucket{le="1.0"} 1',
                'lat_bucket{le="4.0"} 2',
                'lat_bucket{le="+Inf"} 3',
                "lat_sum 11.5",
                "lat_count 3",
                "# HELP requests_total total requests",
                "# TYPE requests_total counter",
                'requests_total{stream="A\\"x\\\\y"} 3.0',
                "",
            ]
        )
        assert to_prometheus(reg.snapshot()) == expected


class TestSpansToJsonl:
    def test_empty_spans_render_as_empty_string(self):
        assert spans_to_jsonl(()) == ""

    def test_one_line_per_span_trailing_newline(self):
        spans = (
            SpanRecord(1, "tick", 0, 1),
            SpanRecord(2, "tuple", 1, 1, parent_id=1, attrs=(("stream", "A"),)),
        )
        text = spans_to_jsonl(spans)
        assert text.endswith("\n")
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["span_id"] for r in records] == [1, 2]
        assert records[1]["attr_stream"] == "A"

    def test_matches_write_trace_output(self, tmp_path):
        reg = MetricsRegistry()
        span = reg.start_span("tick", 3)
        reg.end_span(span, 4, cost=1.0)
        snap = reg.snapshot()
        path = write_trace(tmp_path / "trace.jsonl", snap)
        assert path.read_text() == spans_to_jsonl(snap.spans)

    def test_matches_event_log_jsonl_shape(self):
        """Spans and events share one export pipeline (sorted keys, one
        JSON object per line) so downstream tools parse either stream."""
        from repro.engine.tracing import EventLog

        log = EventLog()
        log.record(1, "fault", stream="A", factor=3)
        for text in (log.to_jsonl(), spans_to_jsonl((SpanRecord(1, "tick", 0, 1),))):
            (line,) = text.splitlines()
            rec = json.loads(line)
            assert list(rec) == sorted(rec)
        assert log.to_jsonl().endswith("\n")
