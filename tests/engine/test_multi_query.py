"""Tests for multi-query execution over shared states."""

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.multi_query import MultiQueryExecutor, QuerySet
from repro.engine.parser import parse_query
from repro.engine.resources import ResourceMeter
from repro.engine.router import GreedyAdaptiveRouter
from repro.engine.stem import SteM
from repro.engine.tuples import StreamTuple


def two_queries():
    """Q1 joins A-B on k; Q2 joins A-C on j.  A is shared."""
    q1 = parse_query(
        "select A.*, B.* from A, B where A.k = B.k window 5",
        schemas={"A": ["k", "j"]},
        name="q1",
    )
    q2 = parse_query(
        "select A.*, C.* from A, C where A.j = C.j window 8",
        schemas={"A": ["k", "j"]},
        name="q2",
    )
    return q1, q2


def build_executor(qs, capacity=1e9, memory_budget=1 << 30, config=None):
    stems = {}
    for stream in qs.stream_names:
        jas = qs.union_jas(stream)
        stems[stream] = SteM(
            stream,
            jas,
            make_bit_index(jas, [3] * len(jas)),
            qs.max_window(stream),
            NullTuner(SRIA(jas)),
        )
    routers = {q.name: GreedyAdaptiveRouter(q, explore_prob=0.0, seed=0) for q in qs}
    return MultiQueryExecutor(
        qs,
        stems,
        routers,
        ResourceMeter(capacity=capacity, memory_budget=memory_budget),
        arrival_rates={s: 1.0 for s in qs.stream_names},
        config=config,
    )


class TestQuerySet:
    def test_union_jas(self):
        qs = QuerySet(two_queries())
        assert list(qs.union_jas("A").names) == ["j", "k"]
        assert list(qs.union_jas("B").names) == ["k"]

    def test_stream_names(self):
        qs = QuerySet(two_queries())
        assert qs.stream_names == ("A", "B", "C")

    def test_queries_for(self):
        qs = QuerySet(two_queries())
        assert len(qs.queries_for("A")) == 2
        assert len(qs.queries_for("B")) == 1

    def test_max_window(self):
        qs = QuerySet(two_queries())
        assert qs.max_window("A") == 8

    def test_lift_pattern(self):
        qs = QuerySet(two_queries())
        q1, _ = qs.queries
        ap, _bindings = q1.probe_spec({"B"}, "A")
        lifted = qs.lift_pattern("A", ap)
        assert lifted.jas == qs.union_jas("A")
        assert lifted.attributes == ("k",)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QuerySet([])

    def test_rejects_duplicate_names(self):
        q1, _ = two_queries()
        with pytest.raises(ValueError, match="duplicate query names"):
            QuerySet([q1, q1])


class TestMultiQueryExecution:
    def test_each_query_produces_independently(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        plan = {
            0: [StreamTuple("A", 0, {"k": 1, "j": 9})],
            1: [StreamTuple("B", 1, {"k": 1})],  # q1 match
            2: [StreamTuple("C", 2, {"j": 9})],  # q2 match
        }
        stats = ex.run(4, lambda t: plan.get(t, []))
        assert ex.per_query_outputs == {"q1": 1, "q2": 1}
        assert stats.outputs == 2

    def test_per_query_windows_respected(self):
        """The shared A-state holds tuples for q2's longer window, but q1
        probes must not see A-tuples older than q1's own window."""
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        plan = {
            0: [StreamTuple("A", 0, {"k": 1, "j": 9})],
            6: [StreamTuple("B", 6, {"k": 1})],  # q1 window (5) has passed
            7: [StreamTuple("C", 7, {"j": 9})],  # q2 window (8) still open
        }
        ex.run(9, lambda t: plan.get(t, []))
        assert ex.per_query_outputs == {"q1": 0, "q2": 1}

    def test_shared_state_single_insert(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        plan = {0: [StreamTuple("A", 0, {"k": 1, "j": 2})]}
        ex.run(1, lambda t: plan.get(t, []))
        assert ex.stems["A"].size == 1  # one state, one copy

    def test_mixed_patterns_reach_shared_assessor(self):
        """Probes from both queries land in A's single assessment table."""
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        plan = {
            0: [StreamTuple("B", 0, {"k": 1}), StreamTuple("C", 0, {"j": 2})],
            1: [StreamTuple("B", 1, {"k": 3}), StreamTuple("C", 1, {"j": 4})],
        }
        ex.run(2, lambda t: plan.get(t, []))
        seen = set(ex.stems["A"].tuner.assessor.frequencies())
        attrs = {ap.attributes for ap in seen}
        assert ("k",) in attrs and ("j",) in attrs

    def test_no_duplicate_results(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        plan = {0: [StreamTuple("A", 0, {"k": 1, "j": 9}), StreamTuple("B", 0, {"k": 1})]}
        ex.run(2, lambda t: plan.get(t, []))
        assert ex.per_query_outputs["q1"] == 1

    def test_memory_death_recorded(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs, capacity=1e-6, memory_budget=900)
        plan = {t: [StreamTuple("A", t, {"k": t, "j": t})] for t in range(60)}
        stats = ex.run(60, lambda t: plan.get(t, []))
        assert stats.died_at is not None

    def test_validation_errors(self):
        qs = QuerySet(two_queries())
        stems = {}
        with pytest.raises(ValueError, match="no SteM"):
            MultiQueryExecutor(
                qs, stems, {}, ResourceMeter(), arrival_rates={}
            )

    def test_wrong_jas_rejected(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs)  # valid stems
        bad_stems = dict(ex.stems)
        jas_b = qs.union_jas("B")
        bad_stems["A"] = SteM("A", jas_b, make_bit_index(jas_b, [2]), 5)
        with pytest.raises(ValueError, match="union JAS"):
            MultiQueryExecutor(
                qs,
                bad_stems,
                ex.routers,
                ResourceMeter(),
                arrival_rates={s: 1.0 for s in qs.stream_names},
            )

    def test_missing_router_rejected(self):
        qs = QuerySet(two_queries())
        ex = build_executor(qs)
        with pytest.raises(ValueError, match="no router"):
            MultiQueryExecutor(
                qs,
                ex.stems,
                {"q1": ex.routers["q1"]},
                ResourceMeter(),
                arrival_rates={s: 1.0 for s in qs.stream_names},
            )
