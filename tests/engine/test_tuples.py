"""Tests for stream tuples and joined partial results."""

import pytest

from repro.engine.tuples import JoinedTuple, StreamTuple


class TestStreamTuple:
    def test_mapping_protocol(self):
        t = StreamTuple("A", 5, {"x": 1, "y": 2})
        assert t["x"] == 1
        assert set(t) == {"x", "y"}
        assert len(t) == 2
        assert "x" in t

    def test_provenance(self):
        t = StreamTuple("A", 5, {})
        assert t.stream == "A" and t.arrived_at == 5

    def test_values_copied(self):
        src = {"x": 1}
        t = StreamTuple("A", 0, src)
        src["x"] = 99
        assert t["x"] == 1

    def test_repr(self):
        assert "A@3" in repr(StreamTuple("A", 3, {"x": 1}))


class TestJoinedTuple:
    def test_of_single(self):
        t = StreamTuple("A", 1, {"x": 1})
        j = JoinedTuple.of(t)
        assert j.streams == {"A"}
        assert j.width == 1
        assert j["x"] == 1

    def test_extend_merges_values(self):
        a = StreamTuple("A", 1, {"x": 1})
        b = StreamTuple("B", 2, {"y": 2})
        j = JoinedTuple.of(a).extend(b)
        assert j.streams == {"A", "B"}
        assert j["x"] == 1 and j["y"] == 2
        assert j.width == 2

    def test_extend_is_persistent(self):
        a = StreamTuple("A", 1, {"x": 1})
        b = StreamTuple("B", 2, {"y": 2})
        j1 = JoinedTuple.of(a)
        j2 = j1.extend(b)
        assert j1.streams == {"A"}
        assert j2.streams == {"A", "B"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JoinedTuple(())

    def test_rejects_duplicate_stream(self):
        a1 = StreamTuple("A", 1, {"x": 1})
        a2 = StreamTuple("A", 2, {"x": 2})
        with pytest.raises(ValueError):
            JoinedTuple.of(a1).extend(a2)

    def test_shared_attribute_consistency(self):
        # Join attributes are equal across sources by construction; the
        # merged view keeps a single value.
        a = StreamTuple("A", 1, {"k": 7, "ax": 1})
        b = StreamTuple("B", 2, {"k": 7, "bx": 2})
        j = JoinedTuple.of(a).extend(b)
        assert j["k"] == 7

    def test_mapping_protocol(self):
        a = StreamTuple("A", 1, {"x": 1})
        j = JoinedTuple.of(a)
        assert dict(j) == {"x": 1}
