"""Tests for the AMR execution loop."""

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.executor import AMRExecutor, ExecutorConfig
from repro.engine.query import JoinPredicate, Query
from repro.engine.resources import ResourceMeter
from repro.engine.router import FixedRouter
from repro.engine.stem import SteM
from repro.engine.stream import StreamSchema
from repro.engine.tuples import StreamTuple
from repro.indexes.scan_index import ScanIndex


def two_stream_query(window=5):
    streams = [StreamSchema("A", ("k", "pa")), StreamSchema("B", ("k", "pb"))]
    return Query(streams, [JoinPredicate("A", "k", "B", "k")], window=window)


def make_executor(query=None, *, capacity=1e9, memory_budget=1 << 30, index_bits=4, config=None):
    query = query if query is not None else two_stream_query()
    stems = {}
    for s in query.stream_names:
        jas = query.jas_for(s)
        stems[s] = SteM(
            s,
            jas,
            make_bit_index(jas, [index_bits] * len(jas)),
            query.window,
            NullTuner(SRIA(jas)),
        )
    router = FixedRouter({s: [t for t in query.stream_names if t != s] for s in query.stream_names})
    meter = ResourceMeter(capacity=capacity, memory_budget=memory_budget)
    return AMRExecutor(
        query,
        stems,
        router,
        meter,
        arrival_rates={s: 1.0 for s in query.stream_names},
        config=config,
    )


def arrivals_from(plan):
    """plan: dict tick -> list of (stream, values)."""

    def gen(tick):
        return [StreamTuple(s, tick, v) for s, v in plan.get(tick, [])]

    return gen


class TestJoinSemantics:
    def test_matching_pair_produces_one_output(self):
        ex = make_executor()
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 1, "pb": 0})]}
        stats = ex.run(3, arrivals_from(plan))
        assert stats.outputs == 1

    def test_no_duplicate_outputs_same_tick(self):
        """Two same-tick matching tuples join exactly once (tie-break)."""
        ex = make_executor()
        plan = {0: [("A", {"k": 1, "pa": 0}), ("B", {"k": 1, "pb": 0})]}
        stats = ex.run(2, arrivals_from(plan))
        assert stats.outputs == 1

    def test_non_matching_pair_produces_nothing(self):
        ex = make_executor()
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 2, "pb": 0})]}
        stats = ex.run(3, arrivals_from(plan))
        assert stats.outputs == 0

    def test_window_expiry_prevents_stale_joins(self):
        ex = make_executor(two_stream_query(window=3))
        plan = {0: [("A", {"k": 1, "pa": 0})], 4: [("B", {"k": 1, "pb": 0})]}
        stats = ex.run(6, arrivals_from(plan))
        assert stats.outputs == 0  # A expired at tick 3

    def test_cartesian_of_matches(self):
        ex = make_executor()
        plan = {
            0: [("A", {"k": 1, "pa": i}) for i in range(3)],
            1: [("B", {"k": 1, "pb": 0}), ("B", {"k": 1, "pb": 1})],
        }
        stats = ex.run(3, arrivals_from(plan))
        assert stats.outputs == 6  # 3 A-tuples x 2 B-tuples

    def test_outputs_match_oracle_on_random_data(self):
        """Engine output count equals a brute-force window-join count."""
        import itertools
        import random

        rng = random.Random(5)
        window = 4
        ex = make_executor(two_stream_query(window=window))
        plan = {}
        all_tuples = []
        for t in range(12):
            plan[t] = []
            for s in ("A", "B"):
                for _ in range(rng.randrange(3)):
                    v = {"k": rng.randrange(3), "pa" if s == "A" else "pb": rng.random()}
                    plan[t].append((s, v))
                    all_tuples.append((s, t, v))
        stats = ex.run(14, arrivals_from(plan))
        expected = 0
        for (s1, t1, v1), (s2, t2, v2) in itertools.combinations(all_tuples, 2):
            if s1 == s2 or v1["k"] != v2["k"]:
                continue
            # joinable iff each is alive when the younger is processed
            older, younger = min(t1, t2), max(t1, t2)
            if older + window > younger:
                expected += 1
        assert stats.outputs == expected


class TestBackpressure:
    def test_backlog_accumulates_when_capacity_tiny(self):
        ex = make_executor(capacity=1e-6)
        plan = {t: [("A", {"k": t, "pa": 0})] for t in range(5)}
        ex.run(5, arrivals_from(plan))
        assert ex.backlog > 0

    def test_memory_death_recorded_not_raised(self):
        ex = make_executor(capacity=1e-6, memory_budget=1_000)
        plan = {t: [("A", {"k": t, "pa": 0}), ("B", {"k": -1, "pb": 0})] for t in range(50)}
        stats = ex.run(50, arrivals_from(plan))
        assert stats.died_at is not None
        assert stats.death_reason is not None
        assert stats.samples[-1].tick == stats.died_at

    def test_dead_run_stops_sampling(self):
        ex = make_executor(capacity=1e-6, memory_budget=1_000)
        plan = {t: [("A", {"k": t, "pa": 0})] for t in range(100)}
        stats = ex.run(100, arrivals_from(plan))
        assert stats.samples[-1].tick < 99


class TestAccounting:
    def test_cost_spent_accumulates(self):
        ex = make_executor()
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 1, "pb": 0})]}
        ex.run(3, arrivals_from(plan))
        assert ex.meter.total_spent > 0

    def test_probe_statistics_recorded(self):
        ex = make_executor()
        plan = {0: [("A", {"k": 1, "pa": 0})], 1: [("B", {"k": 1, "pb": 0})]}
        stats = ex.run(3, arrivals_from(plan))
        assert stats.probes == 2  # one per source tuple (2-way query)
        assert stats.source_tuples == 2
        # each stem's assessor saw its probes
        total_recorded = sum(
            ex.stems[s].tuner.assessor.n_requests for s in ("A", "B")
        )
        assert total_recorded == 2

    def test_max_fanout_caps_partials(self):
        cfg = ExecutorConfig(max_fanout=2)
        ex = make_executor(config=cfg)
        plan = {
            0: [("A", {"k": 1, "pa": i}) for i in range(5)],
            1: [("B", {"k": 1, "pb": 0})],
        }
        stats = ex.run(3, arrivals_from(plan))
        assert stats.outputs == 2  # capped

    def test_rejects_missing_stem(self):
        q = two_stream_query()
        jas = q.jas_for("A")
        stems = {"A": SteM("A", jas, ScanIndex(jas), q.window)}
        with pytest.raises(ValueError, match="no SteM"):
            AMRExecutor(
                q,
                stems,
                FixedRouter({}),
                ResourceMeter(),
                arrival_rates={"A": 1.0},
            )

    def test_rejects_bad_duration(self):
        ex = make_executor()
        with pytest.raises(ValueError):
            ex.run(0, arrivals_from({}))
