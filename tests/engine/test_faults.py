"""Tests for deterministic fault injection, graceful degradation, and the
attachable invariant checker."""

import pytest

from repro.core.access_pattern import JoinAttributeSet
from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.tuner import NullTuner
from repro.engine.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    resolve_fault_plan,
)
from repro.engine.resources import DegradationPolicy
from repro.engine.stem import SteM
from repro.engine.tracing import EventLog
from repro.engine.tuples import StreamTuple
from repro.indexes.scan_index import ScanIndex
from repro.workloads.scenarios import PaperScenario, ScenarioParams

STREAMS = ("A", "B")


def arrivals_at(tick, n=4):
    return [StreamTuple(s, tick, {"k": i}) for s in STREAMS for i in range(n)]


def drive(injector, ticks=30, n=4, log=None):
    """Run the injector standalone over a synthetic arrival stream."""
    delivered = []
    for tick in range(ticks):
        injector.begin_tick(tick, log)
        delivered.append(injector.perturb_arrivals(tick, arrivals_at(tick, n)))
    return delivered


class TestFaultPlan:
    def test_all_zero_plan_is_disabled(self):
        assert not FaultPlan().enabled

    def test_any_probability_enables(self):
        assert FaultPlan(drop_prob=0.1).enabled

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(burst_prob=1.5)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            FaultPlan(burst_len=0)

    def test_profiles_resolve(self):
        for name in FAULT_PROFILES:
            assert resolve_fault_plan(name) is FAULT_PROFILES[name]
        assert resolve_fault_plan(None) is None
        plan = FaultPlan(drop_prob=0.5)
        assert resolve_fault_plan(plan) is plan

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            resolve_fault_plan("mayhem")


class TestFaultTypes:
    def test_stall_suppresses_arrivals(self):
        inj = FaultInjector(FaultPlan(stall_prob=1.0, stall_len=3), STREAMS, seed=1)
        delivered = drive(inj, ticks=3)
        assert all(batch == [] for batch in delivered)

    def test_burst_replicates_arrivals(self):
        inj = FaultInjector(
            FaultPlan(burst_prob=1.0, burst_factor=3, burst_len=5), STREAMS, seed=1
        )
        delivered = drive(inj, ticks=2, n=2)
        # Every arrival appears burst_factor times, values preserved.
        assert all(len(batch) == 2 * 2 * 3 for batch in delivered)
        ks = sorted(int(t["k"]) for t in delivered[0] if t.stream == "A")
        assert ks == [0, 0, 0, 1, 1, 1]

    def test_drop_loses_everything_at_prob_one(self):
        inj = FaultInjector(FaultPlan(drop_prob=1.0), STREAMS, seed=1)
        delivered = drive(inj, ticks=4)
        assert all(batch == [] for batch in delivered)

    def test_delay_redelivers_restamped(self):
        inj = FaultInjector(FaultPlan(delay_prob=1.0, delay_ticks=2), STREAMS, seed=1)
        delivered = drive(inj, ticks=5, n=1)
        assert delivered[0] == [] and delivered[1] == []
        # Tick-0 arrivals re-emerge at tick 2, stamped with the delivery tick.
        assert len(delivered[2]) == len(STREAMS)
        assert all(t.arrived_at == 2 for t in delivered[2])
        assert sorted(t.stream for t in delivered[2]) == sorted(STREAMS)

    def test_squeeze_shrinks_budget_transiently(self):
        plan = FaultPlan(squeeze_prob=1.0, squeeze_factor=0.5, squeeze_len=2)
        inj = FaultInjector(plan, STREAMS, seed=1)
        inj.begin_tick(0)
        assert inj.memory_budget(0, 1000) == 500
        assert inj.memory_budget(1, 1000) == 500
        assert inj.memory_budget(2, 1000) == 1000  # before tick-2 roll

    def test_forced_migrations_and_corruptions_listed(self):
        inj = FaultInjector(
            FaultPlan(migrate_prob=1.0, corrupt_prob=1.0, corrupt_records=7),
            STREAMS,
            seed=1,
        )
        inj.begin_tick(0)
        assert inj.forced_migrations(0) == STREAMS
        assert inj.corruptions(0) == STREAMS
        jas = JoinAttributeSet(["x", "y"])
        patterns = inj.corrupt_patterns(jas)
        assert len(patterns) == 7
        assert all(0 < p.mask <= jas.full_mask for p in patterns)

    def test_begin_tick_required_first(self):
        inj = FaultInjector(FaultPlan(drop_prob=1.0), STREAMS, seed=1)
        with pytest.raises(RuntimeError):
            inj.perturb_arrivals(0, arrivals_at(0))

    def test_activations_logged_as_fault_events(self):
        log = EventLog()
        inj = FaultInjector(FaultPlan(stall_prob=1.0, stall_len=2), STREAMS, seed=1)
        drive(inj, ticks=4, log=log)
        faults = log.events("fault")
        assert faults and all(e.detail["fault"] == "stall" for e in faults)
        assert inj.injected == len(faults)


PER_TYPE_PLANS = {
    "burst": FaultPlan(burst_prob=0.3),
    "stall": FaultPlan(stall_prob=0.3),
    "drop": FaultPlan(drop_prob=0.3),
    "delay": FaultPlan(delay_prob=0.3),
    "squeeze": FaultPlan(squeeze_prob=0.3),
    "migrate": FaultPlan(migrate_prob=0.3),
    "corrupt": FaultPlan(corrupt_prob=0.3, corrupt_records=5),
}


class TestSeededReproducibility:
    @pytest.mark.parametrize("kind", sorted(PER_TYPE_PLANS))
    def test_same_seed_same_schedule(self, kind):
        plan = PER_TYPE_PLANS[kind]
        logs = []
        batches = []
        for _ in range(2):
            log = EventLog()
            inj = FaultInjector(plan, STREAMS, seed=42)
            batches.append(drive(inj, ticks=40, log=log))
            logs.append(log.to_lines())
        assert logs[0] == logs[1]
        a, b = batches
        assert [[repr(t) for t in batch] for batch in a] == [
            [repr(t) for t in batch] for batch in b
        ]

    @pytest.mark.parametrize("kind", sorted(PER_TYPE_PLANS))
    def test_different_seed_different_schedule(self, kind):
        plan = PER_TYPE_PLANS[kind]
        observed = []
        for seed in (1, 2):
            log = EventLog()
            batches = drive(FaultInjector(plan, STREAMS, seed=seed), ticks=60, log=log)
            # Per-tick activations (logged) plus the delivered arrival shape
            # (the only footprint of the per-tuple drop/delay faults).
            observed.append(
                (log.to_lines(), [[repr(t) for t in batch] for batch in batches])
            )
        assert observed[0] != observed[1]

    def test_executor_run_reproducible_under_faults(self):
        """Same (scenario seed, fault seed) => identical stats + events."""

        def once():
            sc = PaperScenario(ScenarioParams(seed=11))
            log = EventLog()
            ex = sc.make_executor(
                "amri:sria",
                capacity=1e9,
                memory_budget=1 << 30,
                event_log=log,
                faults="chaos",
                fault_seed=5,
            )
            stats = ex.run(50, sc.make_generator())
            return stats, log.to_lines()

        (s1, l1), (s2, l2) = once(), once()
        assert s1 == s2
        assert l1 == l2
        assert s1.faults_injected > 0


class TestDegradation:
    def make_stem(self, n=20):
        jas = JoinAttributeSet(["k"])
        stem = SteM("A", jas, make_bit_index(jas, [4]), 100, NullTuner(SRIA(jas)))
        items = [StreamTuple("A", 0, {"k": i % 5}) for i in range(n)]
        for item in items:
            stem.insert(item, 0)
        return stem, items

    def test_degrade_to_scan_preserves_contents(self):
        stem, items = self.make_stem()
        before = {id(m) for m in stem.probe(self._ap(stem), {"k": 3}).matches}
        moved = stem.degrade_to_scan()
        assert moved == len(items)
        assert stem.degraded
        assert isinstance(stem.index, ScanIndex)
        after = {id(m) for m in stem.probe(self._ap(stem), {"k": 3}).matches}
        assert after == before

    def test_degrade_releases_index_memory(self):
        stem, items = self.make_stem()
        heavy = stem.index.memory_bytes
        stem.degrade_to_scan()
        assert stem.index.memory_bytes < heavy
        assert stem.index.accountant.moves == len(items)

    def test_degrade_twice_is_noop(self):
        stem, _ = self.make_stem()
        stem.degrade_to_scan()
        assert stem.degrade_to_scan() == 0

    def test_expiry_still_works_after_degrade(self):
        stem, items = self.make_stem()
        stem.degrade_to_scan()
        assert stem.expire(200) == len(items)
        assert stem.index.size == 0

    @staticmethod
    def _ap(stem):
        from repro.core.access_pattern import AccessPattern

        return AccessPattern.from_attributes(stem.jas, ["k"])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(headroom=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(shed_floor=-1)

    def test_shedding_under_pressure(self):
        """A capacity-starved run sheds backlog instead of dying."""
        sc = PaperScenario(ScenarioParams(seed=41))
        log = EventLog()
        ex = sc.make_executor(
            "scan",
            capacity=100.0,
            memory_budget=150_000,
            event_log=log,
            degradation=DegradationPolicy(),
        )
        stats = ex.run(200, sc.make_generator())
        assert stats.shed_tuples > 0
        assert log.events("shed")
        # Shedding keeps the backlog bounded: the run survives where the
        # policy-less run (tests/engine/test_tracing.py) dies.
        assert stats.died_at is None

    @pytest.mark.parametrize(
        "scheme", ["amri:sria", "hash:2", "static", "inverted", "scan"]
    )
    def test_no_scheme_raises_under_memory_squeeze(self, scheme):
        """Acceptance: squeezed runs either survive with shed/degrade events
        or record an explicit death — never an unhandled exception."""
        sc = PaperScenario(ScenarioParams(seed=13))
        log = EventLog()
        ex = sc.make_executor(
            scheme,
            memory_budget=220_000,
            event_log=log,
            faults=FaultPlan(squeeze_prob=0.2, squeeze_factor=0.35, squeeze_len=8),
            fault_seed=3,
            degradation=DegradationPolicy(),
        )
        stats = ex.run(120, sc.make_generator())
        if stats.died_at is None:
            assert log.events("shed") or log.events("degrade") or stats.shed_tuples >= 0
        else:
            deaths = log.events("death")
            assert len(deaths) == 1 and deaths[0].tick == stats.died_at

    def test_scan_fallback_degrades_heavy_index(self):
        """An index-heavy state falls back to scan rather than dying."""
        sc = PaperScenario(ScenarioParams(seed=7))
        log = EventLog()
        ex = sc.make_executor(
            "hash:7",
            capacity=1e9,
            memory_budget=240_000,
            event_log=log,
            degradation=DegradationPolicy(headroom=0.8),
        )
        stats = ex.run(120, sc.make_generator())
        if stats.degradations:
            degrades = log.events("degrade")
            assert len(degrades) == stats.degradations
            assert any(ex.stems[e.stream].degraded for e in degrades)
        else:  # budget generous enough this seed: at minimum nothing blew up
            assert stats.died_at is None or log.events("death")


class TestInvariantChecker:
    def build(self, checker=None, capacity=1e9):
        sc = PaperScenario(ScenarioParams(seed=19))
        ex = sc.make_executor(
            "amri:sria",
            capacity=capacity,
            memory_budget=1 << 30,
            invariant_checker=checker,
        )
        return sc, ex

    def test_healthy_run_passes(self):
        checker = InvariantChecker()
        sc, ex = self.build(checker)
        ex.run(60, sc.make_generator())
        assert checker.ticks_checked == 60

    def test_checker_does_not_perturb_the_run(self):
        """Attaching the checker must leave RunStats exactly unchanged."""
        sc1, plain = self.build(None)
        stats_plain = plain.run(40, sc1.make_generator())
        sc2, checked = self.build(InvariantChecker())
        stats_checked = checked.run(40, sc2.make_generator())
        assert stats_plain == stats_checked

    def test_detects_index_window_divergence(self):
        sc, ex = self.build()
        ex.run(10, sc.make_generator())
        stem = next(iter(ex.stems.values()))
        victim = next(iter(stem.window))
        stem.index.remove(victim)  # window still holds it
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(ex, 10)

    def test_detects_negative_memory_gauge(self):
        sc, ex = self.build()
        ex.run(5, sc.make_generator())
        stem = next(iter(ex.stems.values()))
        stem.index.accountant.index_bytes = -1
        with pytest.raises(InvariantViolation):
            InvariantChecker(check_index=False, check_completeness=False).check(ex, 5)

    def test_passes_under_faults_and_degradation(self):
        sc = PaperScenario(ScenarioParams(seed=23))
        checker = InvariantChecker()
        ex = sc.make_executor(
            "amri:cdia-highest",
            memory_budget=250_000,
            faults="chaos",
            fault_seed=8,
            degradation=DegradationPolicy(),
            invariant_checker=checker,
        )
        stats = ex.run(100, sc.make_generator())
        assert checker.ticks_checked >= (100 if stats.died_at is None else stats.died_at)
