"""Tests for access patterns, BR(ap), and the search-benefit relation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.access_pattern import (
    AccessPattern,
    JoinAttributeSet,
    all_access_patterns,
)


class TestJoinAttributeSet:
    def test_order_is_significant(self):
        a = JoinAttributeSet(["A", "B"])
        b = JoinAttributeSet(["B", "A"])
        assert a != b

    def test_positions(self, jas3):
        assert jas3.position("A") == 0
        assert jas3.position("C") == 2

    def test_unknown_attribute(self, jas3):
        with pytest.raises(KeyError):
            jas3.position("Z")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JoinAttributeSet([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            JoinAttributeSet(["A", "A"])

    def test_rejects_wildcard_name(self):
        with pytest.raises(ValueError):
            JoinAttributeSet(["A", "*"])

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            JoinAttributeSet(["A", 3])

    def test_full_mask(self, jas3):
        assert jas3.full_mask == 0b111

    def test_container_protocol(self, jas3):
        assert "A" in jas3
        assert "Z" not in jas3
        assert list(jas3) == ["A", "B", "C"]
        assert len(jas3) == 3

    def test_hashable(self, jas3):
        assert hash(jas3) == hash(JoinAttributeSet(["A", "B", "C"]))


class TestBRMapping:
    """The paper's BR(ap) examples from Section IV-C1."""

    def test_single_attribute_A_is_4(self, ap3):
        # <A,*,*> over {A,B,C} has BR = 100 = 4 (paper's Section IV-C1).
        assert ap3("A").br_string() == "100"
        assert ap3("A").br_number() == 4

    def test_BC_is_3(self, ap3):
        # <*,B,C> has BR = 011 = 3.
        assert ap3("B", "C").br_string() == "011"
        assert ap3("B", "C").br_number() == 3

    def test_full_scan_is_zero(self, jas3):
        assert AccessPattern.full_scan(jas3).mask == 0

    def test_vector_notation(self, ap3):
        assert ap3("A", "C").vector() == ("A", "*", "C")
        assert repr(ap3("A", "C")) == "<A, *, C>"

    def test_mask_round_trip(self, jas3):
        for mask in range(8):
            ap = AccessPattern.from_mask(jas3, mask)
            assert AccessPattern.from_attributes(jas3, ap.attributes) == ap

    def test_rejects_out_of_range_mask(self, jas3):
        with pytest.raises(ValueError):
            AccessPattern.from_mask(jas3, 8)

    def test_rejects_wrong_jas_type(self):
        with pytest.raises(TypeError):
            AccessPattern("notajas", 0)


class TestPatternViews:
    def test_n_attributes(self, ap3):
        assert ap3().n_attributes == 0
        assert ap3("A", "B", "C").n_attributes == 3

    def test_uses(self, ap3):
        p = ap3("A", "C")
        assert p.uses("A") and p.uses("C") and not p.uses("B")

    def test_is_full_scan(self, ap3):
        assert ap3().is_full_scan
        assert not ap3("A").is_full_scan

    def test_ordering_and_hash(self, ap3):
        assert ap3("A") != ap3("B")
        assert len({ap3("A"), ap3("A"), ap3("B")}) == 2
        assert sorted([ap3("A"), ap3()]) == [ap3(), ap3("A")]


class TestSearchBenefit:
    """Definition 1: ap1 ≺ ap2 iff attrs(ap1) ⊆ attrs(ap2)."""

    def test_reflexive(self, ap3):
        assert ap3("A", "B").provides_search_benefit_to(ap3("A", "B"))

    def test_subset_benefits(self, ap3):
        assert ap3("A").provides_search_benefit_to(ap3("A", "B"))
        assert ap3().provides_search_benefit_to(ap3("C"))

    def test_superset_does_not(self, ap3):
        assert not ap3("A", "B").provides_search_benefit_to(ap3("A"))

    def test_disjoint_does_not(self, ap3):
        assert not ap3("B").provides_search_benefit_to(ap3("A", "C"))

    def test_proper_excludes_equal(self, ap3):
        assert not ap3("A").is_proper_generalization_of(ap3("A"))
        assert ap3("A").is_proper_generalization_of(ap3("A", "C"))

    def test_cross_jas_rejected(self, ap3):
        other = AccessPattern.from_attributes(JoinAttributeSet(["X", "Y"]), ["X"])
        with pytest.raises(ValueError):
            ap3("A").provides_search_benefit_to(other)

    @given(st.integers(0, 7), st.integers(0, 7))
    def test_matches_subset_semantics(self, m1, m2):
        jas = JoinAttributeSet(["A", "B", "C"])
        p1, p2 = AccessPattern.from_mask(jas, m1), AccessPattern.from_mask(jas, m2)
        assert p1.provides_search_benefit_to(p2) == (set(p1.attributes) <= set(p2.attributes))


class TestLatticeNeighbours:
    def test_parents_remove_one(self, ap3):
        assert set(ap3("A", "B").parents()) == {ap3("A"), ap3("B")}

    def test_top_has_no_parents(self, ap3):
        assert ap3().parents() == ()

    def test_children_add_one(self, ap3):
        assert set(ap3("A").children()) == {ap3("A", "B"), ap3("A", "C")}

    def test_bottom_has_no_children(self, ap3):
        assert ap3("A", "B", "C").children() == ()

    def test_level(self, ap3):
        assert ap3().level() == 0
        assert ap3("A", "B", "C").level() == 3

    def test_generalizations_count(self, ap3):
        assert len(list(ap3("A", "B").generalizations())) == 4
        assert len(list(ap3("A", "B").generalizations(proper=True))) == 3

    def test_specializations_count(self, ap3):
        assert len(list(ap3("A").specializations())) == 4

    @given(st.integers(0, 15))
    def test_parent_child_inverse(self, m):
        jas = JoinAttributeSet(["A", "B", "C", "D"])
        p = AccessPattern.from_mask(jas, m)
        for parent in p.parents():
            assert p in parent.children()
        for child in p.children():
            assert p in child.parents()


class TestAllAccessPatterns:
    def test_counts(self, jas3):
        assert len(all_access_patterns(jas3)) == 8
        # The paper's "7 possible access patterns" for 3 join attributes.
        assert len(all_access_patterns(jas3, include_full_scan=False)) == 7

    def test_unique(self, jas3):
        pats = all_access_patterns(jas3)
        assert len(set(pats)) == len(pats)
