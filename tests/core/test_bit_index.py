"""Tests for the AMRI bit-address index, including an oracle equivalence
property: every search must return exactly what a full scan returns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.bit_index import BitAddressIndex, make_bit_index
from repro.core.index_config import IndexConfiguration
from repro.indexes.base import Accountant
from repro.indexes.scan_index import ScanIndex


def make_items(n, *, mod=(7, 3, 5)):
    return [{"A": i % mod[0], "B": i % mod[1], "C": i % mod[2]} for i in range(n)]


@pytest.fixture
def index(jas3):
    return make_bit_index(jas3, {"A": 5, "B": 2, "C": 3})


class TestStorage:
    def test_insert_and_size(self, index):
        for item in make_items(10):
            index.insert(item)
        assert index.size == 10

    def test_remove(self, index):
        items = make_items(10)
        for item in items:
            index.insert(item)
        index.remove(items[3])
        assert index.size == 9

    def test_remove_unknown_raises(self, index):
        with pytest.raises(KeyError):
            index.remove({"A": 1, "B": 1, "C": 1})

    def test_equal_items_are_distinct(self, index):
        # Identity-based storage: two equal dicts are two stored tuples.
        a, b = {"A": 1, "B": 1, "C": 1}, {"A": 1, "B": 1, "C": 1}
        index.insert(a)
        index.insert(b)
        assert index.size == 2
        index.remove(a)
        assert index.size == 1

    def test_items_iterates_all(self, index):
        items = make_items(20)
        for item in items:
            index.insert(item)
        assert sorted(map(id, index.items())) == sorted(map(id, items))

    def test_bucket_cleanup_on_empty(self, jas3):
        idx = make_bit_index(jas3, {"A": 8, "B": 8, "C": 8})
        item = {"A": 1, "B": 2, "C": 3}
        idx.insert(item)
        assert idx.bucket_count == 1
        idx.remove(item)
        assert idx.bucket_count == 0
        assert idx.memory_bytes == 0

    def test_memory_grows_and_shrinks(self, index):
        items = make_items(50)
        for item in items:
            index.insert(item)
        peak = index.memory_bytes
        assert peak > 0
        for item in items:
            index.remove(item)
        assert index.memory_bytes == 0


class TestSearch:
    def test_exact_pattern_search(self, index, ap3):
        items = make_items(100)
        for item in items:
            index.insert(item)
        out = index.search(ap3("A", "B", "C"), {"A": 3, "B": 1, "C": 2})
        expected = [i for i in items if i["A"] == 3 and i["B"] == 1 and i["C"] == 2]
        assert len(out.matches) == len(expected)

    def test_partial_pattern_search(self, index, ap3):
        items = make_items(100)
        for item in items:
            index.insert(item)
        out = index.search(ap3("B"), {"B": 2})
        assert len(out.matches) == sum(1 for i in items if i["B"] == 2)

    def test_full_scan_pattern_returns_all(self, index, ap3):
        for item in make_items(30):
            index.insert(item)
        out = index.search(ap3(), {})
        assert len(out.matches) == 30
        assert out.used_full_scan

    def test_missing_probe_value_raises(self, index, ap3):
        with pytest.raises(KeyError):
            index.search(ap3("A"), {"B": 1})

    def test_foreign_pattern_raises(self, index):
        foreign = AccessPattern.from_attributes(JoinAttributeSet(["X"]), ["X"])
        with pytest.raises(ValueError):
            index.search(foreign, {"X": 1})

    def test_indexed_probe_examines_fewer(self, jas3, ap3):
        idx = make_bit_index(jas3, {"A": 6, "B": 0, "C": 0})
        items = make_items(200, mod=(64, 3, 5))
        for item in items:
            idx.insert(item)
        indexed = idx.search(ap3("A"), {"A": 10})
        unindexed = idx.search(ap3("B"), {"B": 1})
        assert indexed.tuples_examined < unindexed.tuples_examined
        assert unindexed.tuples_examined == idx.size  # no bits on B: full scan

    def test_empty_index_search(self, index, ap3):
        out = index.search(ap3("A"), {"A": 1})
        assert out.matches == []
        assert out.tuples_examined == 0


class TestCostAccounting:
    def test_insert_charges_hashes(self, jas3):
        acct = Accountant()
        idx = BitAddressIndex(IndexConfiguration(jas3, [4, 4, 0]), acct)
        idx.insert({"A": 1, "B": 2, "C": 3})
        assert acct.hashes == 2  # only the two bitted attributes
        assert acct.inserts == 1

    def test_search_charges_request_hashes(self, index, ap3):
        acct = index.accountant
        before = acct.hashes
        index.search(ap3("A", "C"), {"A": 1, "C": 2})
        assert acct.hashes - before == 2

    def test_wildcard_bucket_visit_charge(self, jas3, ap3):
        idx = make_bit_index(jas3, {"A": 2, "B": 3, "C": 0})
        items = make_items(200, mod=(4, 8, 2))
        for item in items:
            idx.insert(item)
        live = idx.bucket_count
        before = idx.accountant.buckets_visited
        idx.search(ap3("A"), {"A": 1})  # wildcard over B's 3 bits
        visited = idx.accountant.buckets_visited - before
        assert visited == min(2**3, live)

    def test_degenerate_wildcard_capped_at_live_buckets(self, jas3, ap3):
        idx = make_bit_index(jas3, {"A": 2, "B": 30, "C": 30})
        for item in make_items(50):
            idx.insert(item)
        out = idx.search(ap3("A"), {"A": 1})
        assert out.buckets_visited <= idx.bucket_count


class TestMigration:
    def test_preserves_content(self, jas3, ap3):
        idx = make_bit_index(jas3, {"A": 5, "B": 2, "C": 3})
        items = make_items(150)
        for item in items:
            idx.insert(item)
        report = idx.reconfigure(IndexConfiguration(jas3, {"B": 4, "C": 4}))
        assert report.tuples_moved == 150
        out = idx.search(ap3("A", "C"), {"A": 3, "C": 2})
        expected = [i for i in items if i["A"] == 3 and i["C"] == 2]
        assert len(out.matches) == len(expected)

    def test_migration_charges_moves(self, jas3):
        idx = make_bit_index(jas3, {"A": 4, "B": 0, "C": 0})
        for item in make_items(30):
            idx.insert(item)
        acct_before = idx.accountant.snapshot()
        idx.reconfigure(IndexConfiguration(jas3, {"C": 4}))
        assert idx.accountant.moves - acct_before.moves == 30
        assert idx.accountant.inserts == acct_before.inserts  # not fresh inserts

    def test_migration_to_same_config(self, jas3):
        cfg = IndexConfiguration(jas3, [2, 2, 2])
        idx = BitAddressIndex(cfg)
        for item in make_items(10):
            idx.insert(item)
        report = idx.reconfigure(cfg)
        assert report.tuples_moved == 10  # still a relocation pass
        assert idx.size == 10

    def test_rejects_foreign_jas(self, jas3):
        idx = make_bit_index(jas3, [1, 1, 1])
        with pytest.raises(ValueError):
            idx.reconfigure(IndexConfiguration(JoinAttributeSet(["X"]), [4]))

    def test_remove_after_migration(self, jas3):
        idx = make_bit_index(jas3, {"A": 4})
        items = make_items(20)
        for item in items:
            idx.insert(item)
        idx.reconfigure(IndexConfiguration(jas3, {"C": 4}))
        idx.remove(items[0])
        assert idx.size == 19


# --------------------------------------------------------------------- #
# oracle equivalence property


values_strategy = st.fixed_dictionaries(
    {"A": st.integers(0, 8), "B": st.integers(0, 4), "C": st.integers(0, 6)}
)


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(values_strategy, max_size=80),
    bits=st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)),
    mask=st.integers(0, 7),
    probe=values_strategy,
)
def test_search_matches_full_scan_oracle(items, bits, mask, probe):
    """For any configuration, pattern, and probe, the bit-address index
    returns exactly the items a naive full scan returns."""
    jas = JoinAttributeSet(["A", "B", "C"])
    idx = BitAddressIndex(IndexConfiguration(jas, list(bits)))
    oracle = ScanIndex(jas)
    stored = [dict(v) for v in items]
    for item in stored:
        idx.insert(item)
        oracle.insert(item)
    ap = AccessPattern.from_mask(jas, mask)
    got = idx.search(ap, probe)
    want = oracle.search(ap, probe)
    assert sorted(map(id, got.matches)) == sorted(map(id, want.matches))
    # The indexed search never examines more tuples than the scan.
    assert got.tuples_examined <= want.tuples_examined


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(values_strategy, max_size=60),
    bits1=st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    bits2=st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    mask=st.integers(1, 7),
    probe=values_strategy,
)
def test_migration_preserves_search_semantics(items, bits1, bits2, mask, probe):
    """Searching after IC1 -> IC2 migration equals searching a fresh IC2 index."""
    jas = JoinAttributeSet(["A", "B", "C"])
    migrated = BitAddressIndex(IndexConfiguration(jas, list(bits1)))
    fresh = BitAddressIndex(IndexConfiguration(jas, list(bits2)))
    stored = [dict(v) for v in items]
    for item in stored:
        migrated.insert(item)
        fresh.insert(item)
    migrated.reconfigure(IndexConfiguration(jas, list(bits2)))
    ap = AccessPattern.from_mask(jas, mask)
    got = migrated.search(ap, probe)
    want = fresh.search(ap, probe)
    assert sorted(map(id, got.matches)) == sorted(map(id, want.matches))
    assert migrated.bucket_count == fresh.bucket_count


class TestMalformedInput:
    def test_insert_missing_attribute_raises(self, jas3):
        idx = make_bit_index(jas3, [2, 2, 2])
        with pytest.raises(KeyError):
            idx.insert({"A": 1, "B": 2})  # C missing

    def test_partial_insert_leaves_no_trace(self, jas3, ap3):
        """A failed insert must not corrupt the index."""
        idx = make_bit_index(jas3, [2, 2, 2])
        try:
            idx.insert({"A": 1})
        except KeyError:
            pass
        assert idx.size == 0
        good = {"A": 1, "B": 2, "C": 3}
        idx.insert(good)
        out = idx.search(ap3("A"), {"A": 1})
        assert len(out.matches) == 1

    def test_unhashable_value_raises(self, jas3):
        idx = make_bit_index(jas3, [2, 2, 2])
        with pytest.raises(TypeError):
            idx.insert({"A": [1, 2], "B": 0, "C": 0})
