"""Tests for value-to-fragment mapping strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bit_index import BitAddressIndex
from repro.core.index_config import IndexConfiguration
from repro.core.value_mapping import (
    EquiDepthValueMapper,
    HashValueMapper,
    occupancy_skew,
)
from repro.utils.bitops import fragment
from repro.workloads.generators import zipf_weights


class TestHashValueMapper:
    def test_matches_default_fragment(self):
        m = HashValueMapper()
        for v in range(50):
            assert m("any", v, 5) == fragment(v, 5)


class TestEquiDepthValueMapper:
    def test_uniform_sample_splits_evenly(self):
        m = EquiDepthValueMapper({"x": range(1024)})
        frags = [m("x", v, 3) for v in range(1024)]
        counts = np.bincount(frags, minlength=8)
        assert counts.min() >= 100  # ~128 each

    def test_skewed_sample_balances_mass(self):
        """Zipf-distributed values land more evenly than hash mapping.

        Skew 0.9 keeps the heaviest single value under one fragment's fair
        share; a heavier hitter's mass is irreducible by *any* deterministic
        key map (equal values must share a bucket), which bounds how much
        equi-depth can help at higher skews.
        """
        rng = np.random.default_rng(0)
        domain, bits = 4096, 4
        w = zipf_weights(domain, 0.9)
        sample = rng.choice(domain, size=20_000, p=w)
        m = EquiDepthValueMapper({"x": sample})
        test = rng.choice(domain, size=20_000, p=w)

        def skew_of(mapper):
            counts = np.zeros(2**bits, dtype=int)
            for v in test:
                counts[mapper("x", int(v), bits)] += 1
            return occupancy_skew(list(counts))

        assert skew_of(m) < skew_of(HashValueMapper()) * 0.7

    def test_unknown_attribute_falls_back_to_hash(self):
        m = EquiDepthValueMapper({"x": [1, 2, 3]})
        assert not m.has_sample("y")
        assert m("y", 7, 4) == fragment(7, 4)

    def test_zero_bits(self):
        m = EquiDepthValueMapper({"x": [1, 2, 3]})
        assert m("x", 99, 0) == 0

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            EquiDepthValueMapper({"x": []})

    def test_from_tuples(self):
        m = EquiDepthValueMapper.from_tuples(
            ["a", "b"], [{"a": 1, "b": 10}, {"a": 2, "b": 20}]
        )
        assert m.has_sample("a") and m.has_sample("b")

    def test_deterministic(self):
        m = EquiDepthValueMapper({"x": range(100)})
        assert m("x", 42, 4) == m("x", 42, 4)

    @given(
        sample=st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        value=st.integers(0, 1000),
        bits=st.integers(1, 6),
    )
    def test_fragment_in_range(self, sample, value, bits):
        m = EquiDepthValueMapper({"x": sample})
        assert 0 <= m("x", value, bits) < 2**bits

    @settings(max_examples=25, deadline=None)
    @given(
        sample=st.lists(st.integers(0, 50), min_size=4, max_size=100),
        bits=st.integers(1, 4),
    )
    def test_monotone_in_value(self, sample, bits):
        """Larger values never map to smaller fragments (quantile order)."""
        m = EquiDepthValueMapper({"x": sample})
        frags = [m("x", v, bits) for v in range(51)]
        assert frags == sorted(frags)


class TestMapperInsideIndex:
    def test_search_correct_with_equi_depth(self, jas3, ap3):
        """The oracle property holds under a non-default mapper."""
        rng = np.random.default_rng(1)
        items = [
            {"A": int(rng.integers(0, 30)), "B": int(rng.integers(0, 10)), "C": 0}
            for _ in range(200)
        ]
        mapper = EquiDepthValueMapper(
            {"A": [i["A"] for i in items], "B": [i["B"] for i in items]}
        )
        idx = BitAddressIndex(
            IndexConfiguration(jas3, {"A": 3, "B": 2}), value_mapper=mapper
        )
        for item in items:
            idx.insert(item)
        out = idx.search(ap3("A", "B"), {"A": 5, "B": 3})
        expected = [i for i in items if i["A"] == 5 and i["B"] == 3]
        assert len(out.matches) == len(expected)
        # removal still works (same key computed)
        idx.remove(items[0])
        assert idx.size == 199

    def test_equi_depth_flattens_buckets(self, jas3):
        rng = np.random.default_rng(2)
        w = zipf_weights(512, 1.5)
        values = rng.choice(512, size=2_000, p=w)
        items = [{"A": int(v), "B": 0, "C": 0} for v in values]
        cfg = IndexConfiguration(jas3, {"A": 4})
        hashed = BitAddressIndex(cfg)
        depth = BitAddressIndex(
            cfg, value_mapper=EquiDepthValueMapper({"A": [i["A"] for i in items]})
        )
        for item in items:
            hashed.insert(item)
            depth.insert(item)
        assert occupancy_skew(depth.bucket_sizes()) < occupancy_skew(hashed.bucket_sizes())


class TestOccupancySkew:
    def test_even_is_one(self):
        assert occupancy_skew([5, 5, 5]) == 1.0

    def test_empty_is_one(self):
        assert occupancy_skew([]) == 1.0

    def test_skewed_greater(self):
        assert occupancy_skew([10, 0, 0]) == pytest.approx(3.0)
