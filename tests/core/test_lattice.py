"""Tests for the search-benefit lattice (Figure 4 structure)."""

import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.lattice import AccessPatternLattice


class TestStructure:
    def test_node_count(self, lattice3):
        assert len(lattice3) == 8

    def test_top_and_bottom(self, lattice3, ap3):
        assert lattice3.top == ap3()
        assert lattice3.bottom == ap3("A", "B", "C")

    def test_height(self, lattice3):
        assert lattice3.height == 4

    def test_levels_binomial(self, lattice3):
        # Level sizes follow C(3, k): 1, 3, 3, 1 — Figure 4's shape.
        assert [len(lattice3.level(k)) for k in range(4)] == [1, 3, 3, 1]

    def test_edge_count(self, lattice3):
        # n * 2^(n-1) benefit edges for n attributes.
        assert lattice3.edge_count() == 3 * 4

    def test_node_by_mask(self, lattice3, ap3):
        assert lattice3.node(0b101) == ap3("A", "C")

    def test_iter_orders(self, lattice3):
        top_down = list(lattice3.iter_top_down())
        bottom_up = list(lattice3.iter_bottom_up())
        assert top_down[0] == lattice3.top
        assert bottom_up[0] == lattice3.bottom
        levels = [n.level() for n in top_down]
        assert levels == sorted(levels)

    def test_four_attribute_lattice(self, jas4):
        lat = AccessPatternLattice(jas4)
        assert len(lat) == 16
        assert lat.height == 5
        assert lat.edge_count() == 4 * 8


class TestRelations:
    def test_parents_children_symmetry(self, lattice3):
        for node in lattice3:
            for parent in lattice3.parents(node):
                assert node in lattice3.children(parent)

    def test_is_ancestor_strict(self, lattice3, ap3):
        assert lattice3.is_ancestor(ap3("A"), ap3("A", "B"))
        assert not lattice3.is_ancestor(ap3("A"), ap3("A"))
        assert not lattice3.is_ancestor(ap3("A", "B"), ap3("A"))

    def test_descendants_ancestors(self, lattice3, ap3):
        assert set(lattice3.descendants(ap3("A"))) == {
            ap3("A", "B"),
            ap3("A", "C"),
            ap3("A", "B", "C"),
        }
        assert set(lattice3.ancestors(ap3("A", "B"))) == {ap3("A"), ap3("B"), ap3()}

    def test_top_benefits_everything(self, lattice3):
        top = lattice3.top
        assert len(lattice3.descendants(top)) == len(lattice3) - 1

    def test_rejects_foreign_pattern(self, lattice3):
        foreign = AccessPattern.from_attributes(JoinAttributeSet(["X"]), ["X"])
        with pytest.raises(ValueError):
            lattice3.parents(foreign)

    def test_rejects_foreign_lattice_jas(self, jas3):
        lat = AccessPatternLattice(jas3)
        assert lat.jas == jas3
        with pytest.raises(ValueError):
            lat.depth(AccessPattern.from_attributes(JoinAttributeSet(["X", "Y"]), ["X"]))

    def test_contains(self, lattice3, ap3):
        assert ap3("A") in lattice3
        assert "not a pattern" not in lattice3
