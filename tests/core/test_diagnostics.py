"""Tests for index health diagnostics."""

import pytest

from repro.core.assessment import SRIA
from repro.core.bit_index import make_bit_index
from repro.core.diagnostics import (
    format_report,
    inspect_index,
    inspect_state,
)
from repro.core.selector import IndexSelector


def fill(index, n=120):
    for i in range(n):
        index.insert({"A": i % 30, "B": (i * 7) % 20, "C": i % 4})


class TestInspectIndex:
    def test_empty_index(self, jas3):
        snap = inspect_index(make_bit_index(jas3, [2, 2, 2]))
        assert snap.size == 0
        assert snap.bucket_count == 0
        assert snap.largest_bucket == 0
        assert snap.mean_bucket_size == 0.0

    def test_filled_index(self, jas3):
        idx = make_bit_index(jas3, [4, 3, 2])
        fill(idx)
        snap = inspect_index(idx)
        assert snap.size == 120
        assert snap.bucket_count == idx.bucket_count
        assert snap.occupancy_skew >= 1.0
        assert snap.largest_bucket >= 1
        assert snap.memory_bytes == idx.memory_bytes
        assert snap.mean_bucket_size == pytest.approx(120 / idx.bucket_count)


class TestInspectState:
    def test_without_requests(self, jas3):
        idx = make_bit_index(jas3, [2, 2, 2])
        snap = inspect_state("A", idx, SRIA(jas3))
        assert snap.n_requests == 0
        assert snap.current_cd is None
        assert snap.staleness == 0.0

    def test_staleness_detects_mistuned_index(self, jas3, ap3):
        # All bits on C, but the workload only ever probes A.
        idx = make_bit_index(jas3, {"C": 8})
        fill(idx)
        assessor = SRIA(jas3)
        for _ in range(200):
            assessor.record(ap3("A"))
        snap = inspect_state(
            "A",
            idx,
            assessor,
            lambda_d=10,
            lambda_r=20,
            window=12,
            domain_bits={"A": 5, "B": 5, "C": 2},
            selector=IndexSelector(jas3, 16),
        )
        assert snap.current_cd is not None and snap.best_cd is not None
        assert snap.staleness > 0.3
        assert snap.best_config.bits_for_attribute("A") > 0

    def test_well_tuned_index_not_stale(self, jas3, ap3):
        idx = make_bit_index(jas3, {"A": 5})
        fill(idx)
        assessor = SRIA(jas3)
        for _ in range(200):
            assessor.record(ap3("A"))
        snap = inspect_state(
            "A",
            idx,
            assessor,
            lambda_d=10,
            lambda_r=20,
            window=12,
            domain_bits={"A": 5, "B": 5, "C": 2},
            selector=IndexSelector(jas3, 5),
        )
        assert snap.staleness < 0.05

    def test_scan_fraction_range(self, jas3, ap3):
        idx = make_bit_index(jas3, [2, 2, 2])
        fill(idx)
        assessor = SRIA(jas3)
        for _ in range(50):
            assessor.record(ap3("B"))
        snap = inspect_state("A", idx, assessor, lambda_d=5, window=10)
        assert 0.0 <= snap.scan_fraction <= 1.0


class TestFormatReport:
    def test_report_lines(self, jas3, ap3):
        idx = make_bit_index(jas3, {"C": 6})
        fill(idx)
        assessor = SRIA(jas3)
        for _ in range(100):
            assessor.record(ap3("A"))
        snap = inspect_state(
            "A",
            idx,
            assessor,
            lambda_d=10,
            lambda_r=10,
            window=10,
            domain_bits={"A": 5},
            selector=IndexSelector(jas3, 8),
        )
        report = format_report([snap])
        assert "state" in report and "IC(" in report
        assert "selector would choose" in report
