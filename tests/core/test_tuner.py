"""Tests for the AMRI tuner, the hash baseline tuner, and the null tuner."""

import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.assessment import CDIA, SRIA
from repro.core.bit_index import make_bit_index
from repro.core.selector import IndexSelector
from repro.core.tuner import AMRITuner, HashIndexTuner, NullTuner, TuningContext
from repro.indexes.hash_index import MultiHashIndex

CTX = TuningContext(lambda_d=50.0, window=10.0, horizon=25.0, domain_bits={"A": 8, "B": 8, "C": 8})


def make_amri(jas, bits=None, theta=0.1, budget=16, reset_after_tune=True):
    index = make_bit_index(jas, bits if bits is not None else [2, 2, 2])
    assessor = CDIA(jas, epsilon=0.05, combine="highest_count", seed=0)
    return AMRITuner(
        index, assessor, IndexSelector(jas, budget), theta=theta,
        reset_after_tune=reset_after_tune,
    )


def fill(index, n=200):
    for i in range(n):
        index.insert({"A": i % 50, "B": (i * 7) % 50, "C": (i * 11) % 50})


class TestAMRITuner:
    def test_no_requests_no_tune(self, jas3):
        tuner = make_amri(jas3)
        assert tuner.tune(CTX) is None

    def test_migrates_toward_hot_pattern(self, jas3, ap3):
        tuner = make_amri(jas3, bits=[0, 0, 4])
        fill(tuner.index)
        for _ in range(300):
            tuner.observe(ap3("A"))
        report = tuner.tune(CTX)
        assert report is not None and report.migrated
        assert tuner.index.config.bits_for_attribute("A") > 0
        assert ap3("A") in report.frequencies

    def test_keeps_good_configuration(self, jas3, ap3):
        tuner = make_amri(jas3, bits=[8, 0, 0])
        fill(tuner.index)
        for _ in range(300):
            tuner.observe(ap3("A"))
        report = tuner.tune(CTX)
        # Already optimal for an A-only workload: no migration.
        assert report is None or not report.migrated

    def test_resets_assessor_after_tune(self, jas3, ap3):
        tuner = make_amri(jas3, reset_after_tune=True)
        for _ in range(50):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert tuner.assessor.n_requests == 0

    def test_cumulative_mode_keeps_statistics(self, jas3, ap3):
        tuner = make_amri(jas3, reset_after_tune=False)
        for _ in range(50):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert tuner.assessor.n_requests == 50
        # lambda_r averages over all elapsed horizons
        for _ in range(50):
            tuner.observe(ap3("A"))
        report = tuner.tune(CTX)
        assert report is not None

    def test_below_threshold_noise_keeps_config(self, jas3):
        # SRIA keeps exact (unrolled) statistics, so with theta=0.9 and an
        # even 7-way spread no pattern can clear the threshold.  (CDIA could
        # legitimately concentrate rolled-up mass above it.)
        index = make_bit_index(jas3, [2, 2, 2])
        tuner = AMRITuner(index, SRIA(jas3), IndexSelector(jas3, 16), theta=0.9)
        fill(tuner.index, 50)
        for m in range(1, 8):
            for _ in range(3):
                tuner.observe(AccessPattern.from_mask(jas3, m))
        before = tuner.index.config
        assert tuner.tune(CTX) is None
        assert tuner.index.config == before

    def test_migration_gate_blocks_marginal_gains(self, jas3, ap3):
        # A huge state makes migration expensive; a tiny horizon makes the
        # projected saving small — the gate must refuse.
        tuner = make_amri(jas3, bits=[7, 0, 0])
        fill(tuner.index, 2000)
        for _ in range(100):
            tuner.observe(ap3("A"))
            tuner.observe(ap3("A", "B"))
        ctx = TuningContext(lambda_d=1.0, window=1.0, horizon=0.5, domain_bits={})
        report = tuner.tune(ctx)
        if report is not None:
            assert not report.migrated

    def test_history_recorded(self, jas3, ap3):
        tuner = make_amri(jas3)
        fill(tuner.index)
        for _ in range(100):
            tuner.observe(ap3("B"))
        tuner.tune(CTX)
        assert len(tuner.history) == 1
        assert tuner.history[0].projected_saving == pytest.approx(
            tuner.history[0].old_cd - tuner.history[0].new_cd
        )

    def test_rejects_mismatched_components(self, jas3):
        other = JoinAttributeSet(["X", "Y"])
        index = make_bit_index(jas3, [1, 1, 1])
        with pytest.raises(ValueError):
            AMRITuner(index, SRIA(other), IndexSelector(jas3, 8))

    def test_rejects_bad_theta(self, jas3):
        index = make_bit_index(jas3, [1, 1, 1])
        with pytest.raises(ValueError):
            AMRITuner(index, SRIA(jas3), IndexSelector(jas3, 8), theta=0.0)


class TestHashIndexTuner:
    def make(self, jas, k=2, patterns=()):
        index = MultiHashIndex(jas, patterns)
        return HashIndexTuner(index, CDIA(jas, 0.05, seed=0), k=k), index

    def test_selects_most_frequent(self, jas3, ap3):
        tuner, index = self.make(jas3, k=1)
        for _ in range(100):
            tuner.observe(ap3("B", "C"))
        for _ in range(10):
            tuner.observe(ap3("A"))
        report = tuner.tune(CTX)
        assert report is not None
        assert index.patterns[0] == ap3("B", "C") or ap3("B", "C") in index.patterns

    def test_maintains_exactly_k_modules(self, jas3, ap3):
        tuner, index = self.make(jas3, k=5)
        for _ in range(100):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert index.module_count == 5

    def test_keeps_existing_modules_on_padding(self, jas3, ap3):
        start = [ap3("B"), ap3("C")]
        tuner, index = self.make(jas3, k=3, patterns=start)
        for _ in range(100):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert ap3("A") in index.patterns
        # the two starting modules fill the remaining slots (no rebuild)
        assert set(start) <= set(index.patterns)

    def test_no_requests_no_tune(self, jas3):
        tuner, _ = self.make(jas3)
        assert tuner.tune(CTX) is None

    def test_rebuild_populates_new_module(self, jas3, ap3):
        tuner, index = self.make(jas3, k=1, patterns=[ap3("B")])
        items = [{"A": i, "B": i % 3, "C": i % 5} for i in range(40)]
        for item in items:
            index.insert(item)
        for _ in range(100):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        out = index.search(ap3("A"), {"A": 7})
        assert len(out.matches) == 1
        assert not out.used_full_scan

    def test_rejects_bad_k(self, jas3):
        index = MultiHashIndex(jas3)
        with pytest.raises(ValueError):
            HashIndexTuner(index, CDIA(jas3, 0.05), k=0)


class TestNullTuner:
    def test_never_tunes(self, jas3, ap3):
        tuner = NullTuner(SRIA(jas3))
        tuner.observe(ap3("A"))
        assert tuner.tune(CTX) is None
        assert tuner.assessor.n_requests == 1

    def test_without_assessor(self, jas3, ap3):
        tuner = NullTuner()
        tuner.observe(ap3("A"))  # no-op, must not raise
        assert tuner.tune(CTX) is None


class TestHashTunerWindowing:
    def test_cumulative_mode_keeps_statistics(self, jas3, ap3):
        index = MultiHashIndex(jas3)
        tuner = HashIndexTuner(
            index, CDIA(jas3, 0.05, seed=0), k=1, reset_after_tune=False
        )
        for _ in range(30):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert tuner.assessor.n_requests == 30

    def test_windowed_mode_resets(self, jas3, ap3):
        index = MultiHashIndex(jas3)
        tuner = HashIndexTuner(index, CDIA(jas3, 0.05, seed=0), k=1)
        for _ in range(30):
            tuner.observe(ap3("A"))
        tuner.tune(CTX)
        assert tuner.assessor.n_requests == 0


class TestTunerHistory:
    def test_history_accumulates_over_rounds(self, jas3, ap3):
        tuner = make_amri(jas3, reset_after_tune=True)
        fill(tuner.index)
        for round_no in range(3):
            for _ in range(60):
                tuner.observe(ap3("A") if round_no % 2 == 0 else ap3("C"))
            tuner.tune(CTX)
        assert len(tuner.history) == 3
        # alternating workloads force at least one migration after the first
        assert any(r.migrated for r in tuner.history)

    def test_report_descriptions_track_configs(self, jas3, ap3):
        tuner = make_amri(jas3, bits=[0, 0, 6])
        fill(tuner.index)
        for _ in range(200):
            tuner.observe(ap3("A"))
        report = tuner.tune(CTX)
        assert "C:6" in report.old_description
        assert report.new_description == repr(tuner.index.config)
