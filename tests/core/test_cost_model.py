"""Tests for the C_D cost model (Equation 1 with documented refinements)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.cost_model import (
    WorkloadStatistics,
    cost_breakdown,
    effective_pattern_bits,
    effective_total_bits,
    estimate_cd,
    expected_bucket_visits,
    expected_tuples_compared,
    hash_scheme_cd,
    migration_cost,
    selectivity_weighted_scan_fraction,
)
from repro.core.index_config import IndexConfiguration
from repro.indexes.base import CostParams


def make_stats(jas, freqs, *, lambda_d=100.0, lambda_r=50.0, window=10.0, domain_bits=None):
    return WorkloadStatistics(
        lambda_d=lambda_d,
        lambda_r=lambda_r,
        window=window,
        frequencies=freqs,
        domain_bits=domain_bits or {},
    )


class TestWorkloadStatistics:
    def test_stored_tuples(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        assert stats.stored_tuples == 1000.0

    def test_rejects_bad_rates(self, jas3, ap3):
        with pytest.raises(ValueError):
            make_stats(jas3, {ap3("A"): 1.0}, lambda_d=0)
        with pytest.raises(ValueError):
            make_stats(jas3, {ap3("A"): 1.0}, window=0)

    def test_rejects_negative_frequency(self, jas3, ap3):
        with pytest.raises(ValueError):
            make_stats(jas3, {ap3("A"): -0.1})


class TestEffectiveBits:
    def test_uncapped(self, jas3, ap3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        assert effective_pattern_bits(ic, ap3("A", "C"), {}) == 8

    def test_domain_cap_applies(self, jas3, ap3):
        ic = IndexConfiguration(jas3, [10, 2, 3])
        assert effective_pattern_bits(ic, ap3("A"), {"A": 4}) == 4

    def test_total_bits_capped(self, jas3):
        ic = IndexConfiguration(jas3, [10, 10, 10])
        assert effective_total_bits(ic, {"A": 2, "B": 2, "C": 2}) == 6


class TestSearchTerms:
    def test_tuples_compared_halves_per_bit(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        ic0 = IndexConfiguration(jas3, [0, 0, 0])
        ic1 = IndexConfiguration(jas3, [1, 0, 0])
        assert expected_tuples_compared(ic0, ap3("A"), stats) == stats.stored_tuples
        assert expected_tuples_compared(ic1, ap3("A"), stats) == stats.stored_tuples / 2

    def test_bucket_visits_wildcard(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        ic = IndexConfiguration(jas3, [2, 3, 0])
        # Probing with A only leaves B's 3 bits wild: 8 bucket ids.
        assert expected_bucket_visits(ic, ap3("A"), stats) == 8.0

    def test_bucket_visits_capped_at_live(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0}, lambda_d=10, window=2)  # 20 tuples
        ic = IndexConfiguration(jas3, [2, 16, 0])
        assert expected_bucket_visits(ic, ap3("A"), stats) <= 20.0

    def test_exact_match_single_bucket(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A", "B", "C"): 1.0})
        ic = IndexConfiguration(jas3, [2, 2, 2])
        assert expected_bucket_visits(ic, ap3("A", "B", "C"), stats) == 1.0


class TestCostBreakdown:
    def test_maintenance_counts_indexed_attrs(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        bd = cost_breakdown(IndexConfiguration(jas3, [4, 4, 0]), stats)
        assert bd.maintenance == stats.lambda_d * 2 * CostParams.c_hash

    def test_total_is_sum(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 0.6, ap3("B", "C"): 0.4})
        bd = cost_breakdown(IndexConfiguration(jas3, [2, 2, 2]), stats)
        assert bd.total == pytest.approx(
            bd.maintenance + bd.request_hashing + bd.bucket_visits + bd.tuple_comparisons
        )
        assert bd.search == pytest.approx(bd.total - bd.maintenance)

    def test_zero_frequency_patterns_free(self, jas3, ap3):
        stats_a = make_stats(jas3, {ap3("A"): 1.0, ap3("B"): 0.0})
        stats_b = make_stats(jas3, {ap3("A"): 1.0})
        ic = IndexConfiguration(jas3, [2, 2, 2])
        assert estimate_cd(ic, stats_a) == estimate_cd(ic, stats_b)

    def test_foreign_pattern_rejected(self, jas3):
        foreign_jas = JoinAttributeSet(["X"])
        foreign = AccessPattern.from_attributes(foreign_jas, ["X"])
        stats = make_stats(jas3, {foreign: 1.0})
        with pytest.raises(ValueError):
            estimate_cd(IndexConfiguration(jas3, [1, 1, 1]), stats)

    def test_printed_formula_via_zero_bucket_cost(self, jas3, ap3):
        """With c_bucket = 0 the model reduces to the paper's printed Eq. 1."""
        params = CostParams(c_bucket=0.0)
        stats = make_stats(jas3, {ap3("A"): 1.0})
        ic = IndexConfiguration(jas3, [3, 0, 0])
        expected = (
            stats.lambda_d * 1 * params.c_hash
            + stats.lambda_r
            * 1.0
            * (1 * params.c_hash + stats.stored_tuples / 2**3 * params.c_compare)
        )
        assert estimate_cd(ic, stats, params) == pytest.approx(expected)

    def test_indexing_frequent_attr_lowers_cost(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        bare = estimate_cd(IndexConfiguration(jas3, [0, 0, 0]), stats)
        indexed = estimate_cd(IndexConfiguration(jas3, [6, 0, 0]), stats)
        assert indexed < bare

    def test_bits_on_unused_attr_raise_cost(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        focused = estimate_cd(IndexConfiguration(jas3, [6, 0, 0]), stats)
        wasteful = estimate_cd(IndexConfiguration(jas3, [6, 6, 0]), stats)
        assert wasteful > focused

    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
        mask=st.integers(1, 7),
    )
    def test_cost_non_negative_and_finite(self, bits, mask):
        jas = JoinAttributeSet(["A", "B", "C"])
        ap = AccessPattern.from_mask(jas, mask)
        stats = make_stats(jas, {ap: 1.0})
        cd = estimate_cd(IndexConfiguration(jas, list(bits)), stats)
        assert cd >= 0 and cd == cd  # finite, not NaN

    @settings(max_examples=30, deadline=None)
    @given(mask=st.integers(1, 7), extra=st.integers(1, 6))
    def test_more_bits_on_pattern_attr_never_hurt_comparisons(self, mask, extra):
        jas = JoinAttributeSet(["A", "B", "C"])
        ap = AccessPattern.from_mask(jas, mask)
        stats = make_stats(jas, {ap: 1.0})
        attr = ap.attributes[0]
        base = IndexConfiguration(jas, {attr: 2})
        more = IndexConfiguration(jas, {attr: 2 + extra})
        assert expected_tuples_compared(more, ap, stats) <= expected_tuples_compared(
            base, ap, stats
        )


class TestMigrationCost:
    def test_zero_for_identical(self, jas3):
        ic = IndexConfiguration(jas3, [1, 2, 3])
        assert migration_cost(ic, ic, 1000) == 0.0

    def test_scales_with_tuples(self, jas3):
        a = IndexConfiguration(jas3, [1, 0, 0])
        b = IndexConfiguration(jas3, [0, 1, 0])
        assert migration_cost(a, b, 200) == 2 * migration_cost(a, b, 100)

    def test_counts_new_indexed_attrs(self, jas3):
        a = IndexConfiguration(jas3, [1, 0, 0])
        narrow = IndexConfiguration(jas3, [0, 4, 0])
        wide = IndexConfiguration(jas3, [0, 4, 4])
        assert migration_cost(a, wide, 100) > migration_cost(a, narrow, 100)


class TestHashSchemeCd:
    def test_no_modules_means_scans(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        cd = hash_scheme_cd([], stats)
        assert cd == pytest.approx(stats.lambda_r * stats.stored_tuples * CostParams.c_compare)

    def test_suitable_module_beats_scan(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0}, domain_bits={"A": 8})
        with_module = hash_scheme_cd([ap3("A")], stats)
        without = hash_scheme_cd([ap3("B")], stats)
        assert with_module < without

    def test_more_modules_cost_more_maintenance(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0}, domain_bits={"A": 8, "B": 8, "C": 8})
        one = hash_scheme_cd([ap3("A")], stats)
        three = hash_scheme_cd([ap3("A"), ap3("B"), ap3("C")], stats)
        assert three > one


class TestScanFraction:
    def test_range(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 0.7, ap3("B"): 0.3})
        frac = selectivity_weighted_scan_fraction(IndexConfiguration(jas3, [4, 0, 0]), stats)
        assert 0.0 <= frac <= 1.0

    def test_no_index_is_one(self, jas3, ap3):
        stats = make_stats(jas3, {ap3("A"): 1.0})
        assert selectivity_weighted_scan_fraction(
            IndexConfiguration(jas3, [0, 0, 0]), stats
        ) == pytest.approx(1.0)


class TestCostModelEdgeCases:
    def test_empty_frequencies_is_maintenance_only(self, jas3):
        stats = WorkloadStatistics(
            lambda_d=10.0, lambda_r=5.0, window=4.0, frequencies={}
        )
        bd = cost_breakdown(IndexConfiguration(jas3, [2, 0, 0]), stats)
        assert bd.search == 0.0
        assert bd.total == bd.maintenance > 0

    def test_zero_lambda_r_removes_search_cost(self, jas3, ap3):
        stats = WorkloadStatistics(
            lambda_d=10.0, lambda_r=0.0, window=4.0, frequencies={ap3("A"): 1.0}
        )
        bd = cost_breakdown(IndexConfiguration(jas3, [2, 2, 2]), stats)
        assert bd.search == 0.0

    def test_migration_cost_to_unindexed_is_move_only(self, jas3):
        a = IndexConfiguration(jas3, [3, 0, 0])
        empty = IndexConfiguration(jas3, [0, 0, 0])
        params = CostParams()
        assert migration_cost(a, empty, 10, params) == pytest.approx(10 * params.c_move)

    def test_hash_scheme_full_scan_pattern(self, jas3, ap3):
        # a full-scan request never has a suitable module
        stats = WorkloadStatistics(
            lambda_d=10.0, lambda_r=1.0, window=10.0, frequencies={ap3(): 1.0}
        )
        cd = hash_scheme_cd([ap3("A")], stats)
        assert cd >= stats.stored_tuples * CostParams.c_compare
