"""Tests for the four assessment methods (SRIA, CSRIA, DIA, CDIA)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.assessment import (
    ASSESSOR_NAMES,
    CDIA,
    CSRIA,
    DIA,
    SRIA,
    make_assessor,
)
from repro.core.assessment.sria import SRIATable


def feed(assessor, freqs, n, seed=0):
    """Feed ~n requests drawn exactly per the frequency table (shuffled)."""
    requests = []
    for ap, f in freqs.items():
        requests.extend([ap] * round(f * n))
    random.Random(seed).shuffle(requests)
    for ap in requests:
        assessor.record(ap)
    return requests


class TestSRIATable:
    def test_increment_and_count(self):
        t = SRIATable()
        t.increment(3)
        t.increment(3, by=2)
        assert t.count(3) == 3
        assert t.count(5) == 0

    def test_masks_and_items(self):
        t = SRIATable()
        t.increment(1)
        t.increment(4)
        assert set(t.masks()) == {1, 4}
        assert dict(t.items()) == {1: 1, 4: 1}

    def test_clear(self):
        t = SRIATable()
        t.increment(1)
        t.clear()
        assert len(t) == 0 and 1 not in t


class TestSRIA:
    def test_exact_frequencies(self, jas3, ap3):
        sria = SRIA(jas3)
        feed(sria, {ap3("A"): 0.25, ap3("B", "C"): 0.75}, 400)
        freqs = sria.frequencies()
        assert freqs[ap3("A")] == pytest.approx(0.25)
        assert freqs[ap3("B", "C")] == pytest.approx(0.75)

    def test_frequent_patterns_threshold(self, jas3, ap3):
        sria = SRIA(jas3)
        feed(sria, {ap3("A"): 0.05, ap3("B"): 0.95}, 1000)
        assert set(sria.frequent_patterns(0.10)) == {ap3("B")}
        assert set(sria.frequent_patterns(0.01)) == {ap3("A"), ap3("B")}

    def test_empty(self, jas3):
        sria = SRIA(jas3)
        assert sria.frequencies() == {}
        assert sria.frequent_patterns(0.1) == {}
        assert sria.entry_count == 0

    def test_reset(self, jas3, ap3):
        sria = SRIA(jas3)
        sria.record(ap3("A"))
        sria.reset()
        assert sria.n_requests == 0 and sria.entry_count == 0

    def test_rejects_foreign_pattern(self, jas3):
        sria = SRIA(jas3)
        foreign = AccessPattern.from_attributes(JoinAttributeSet(["X"]), ["X"])
        with pytest.raises(ValueError):
            sria.record(foreign)

    def test_entry_count_tracks_distinct(self, jas3, ap3):
        sria = SRIA(jas3)
        feed(sria, {ap3("A"): 0.5, ap3("B"): 0.3, ap3("C"): 0.2}, 100)
        assert sria.entry_count == 3


class TestCSRIA:
    def test_deletes_infrequent_patterns(self, jas3, ap3, table2_frequencies):
        """The Table II behaviour: 4% patterns vanish at theta=5%, eps=0.1%."""
        csria = CSRIA(jas3, epsilon=0.001)
        feed(csria, table2_frequencies, 10_000)
        result = csria.frequent_patterns(0.05)
        assert ap3("A") not in result
        assert ap3("A", "B") not in result
        for ap, f in table2_frequencies.items():
            if f >= 0.05:
                assert ap in result

    def test_no_false_negatives(self, jas3, ap3):
        csria = CSRIA(jas3, epsilon=0.01)
        freqs = {ap3("A"): 0.5, ap3("B"): 0.3, ap3("A", "C"): 0.15, ap3("C"): 0.05}
        feed(csria, freqs, 2000)
        result = csria.frequent_patterns(0.1)
        assert ap3("A") in result and ap3("B") in result and ap3("A", "C") in result

    def test_memory_bounded_under_noise(self, jas3):
        """Exploration noise cannot grow the table past the lossy bound."""
        csria = CSRIA(jas3, epsilon=0.05)
        rng = random.Random(1)
        for _ in range(5000):
            csria.record(AccessPattern.from_mask(jas3, rng.randrange(8)))
        assert csria.entry_count <= 8  # trivially bounded by pattern count
        # and compaction is actually happening:
        assert csria.current_segment_id > 1

    def test_max_error_exposed(self, jas3, ap3):
        csria = CSRIA(jas3, epsilon=0.1)
        for _ in range(25):
            csria.record(ap3("A"))
        csria.record(ap3("B"))
        assert csria.max_error(ap3("B")) == csria.current_segment_id - 1
        assert csria.max_error(ap3("A")) == 0

    def test_reset(self, jas3, ap3):
        csria = CSRIA(jas3, epsilon=0.1)
        csria.record(ap3("A"))
        csria.reset()
        assert csria.n_requests == 0 and csria.entry_count == 0


class TestDIA:
    def test_statistics_identical_to_sria(self, jas3, table2_frequencies):
        """The paper: DIA and SRIA share the same table and reduce nothing,
        so their statistics are byte-identical."""
        sria, dia = SRIA(jas3), DIA(jas3)
        reqs = feed(sria, table2_frequencies, 5000, seed=3)
        for ap in reqs:
            dia.record(ap)
        assert sria.frequencies() == dia.frequencies()
        assert sria.frequent_patterns(0.1) == dia.frequent_patterns(0.1)
        assert sria.entry_count == dia.entry_count

    def test_leaf_nodes(self, jas3, ap3):
        dia = DIA(jas3)
        for ap in [ap3("A"), ap3("A", "B"), ap3("C")]:
            dia.record(ap)
        leaves = dia.leaf_nodes()
        assert ap3("A", "B") in leaves
        assert ap3("C") in leaves
        assert ap3("A") not in leaves  # has tracked descendant <A,B,*>

    def test_rolled_up_count(self, jas3, ap3):
        dia = DIA(jas3)
        for ap, k in [(ap3("A"), 3), (ap3("A", "B"), 2), (ap3("B"), 4)]:
            for _ in range(k):
                dia.record(ap)
        assert dia.rolled_up_count(ap3("A")) == 5  # own 3 + <A,B> 2
        assert dia.rolled_up_count(ap3()) == 9  # everything

    def test_tracked_nodes_bottom_up(self, jas3, ap3):
        dia = DIA(jas3)
        for ap in [ap3("A"), ap3("A", "B", "C")]:
            dia.record(ap)
        nodes = dia.tracked_nodes()
        assert nodes[0] == ap3("A", "B", "C")

    def test_rejects_mismatched_lattice(self, jas3):
        from repro.core.lattice import AccessPatternLattice

        other = AccessPatternLattice(JoinAttributeSet(["X", "Y"]))
        with pytest.raises(ValueError):
            DIA(jas3, lattice=other)


class TestCDIA:
    def test_combines_instead_of_deleting(self, jas3, ap3, table2_frequencies):
        """Where CSRIA deletes <A,*,*> and <A,B,*>, CDIA folds their mass
        into surviving generalizations."""
        cdia = CDIA(jas3, epsilon=0.001, combine="highest_count", seed=0)
        feed(cdia, table2_frequencies, 10_000)
        result = cdia.frequent_patterns(0.05)
        reported_mass = sum(result.values())
        # CSRIA retains 92% of the mass (it deletes the two 4% patterns);
        # CDIA combines <A,B,*> upward and so must retain strictly more.
        # (<A,*,*>'s only generalization is the full scan, so its 4% can
        # still legitimately fall off the top of the lattice.)
        assert reported_mass >= 0.95
        csria = CSRIA(jas3, epsilon=0.001)
        feed(csria, table2_frequencies, 10_000)
        assert reported_mass > sum(csria.frequent_patterns(0.05).values())

    def test_no_false_negatives(self, jas3, ap3):
        cdia = CDIA(jas3, epsilon=0.01)
        freqs = {ap3("A"): 0.4, ap3("B"): 0.4, ap3("A", "B", "C"): 0.2}
        feed(cdia, freqs, 3000)
        result = cdia.frequent_patterns(0.15)
        for ap in freqs:
            assert ap in result or any(r.provides_search_benefit_to(ap) for r in result)

    def test_random_vs_highest_strategies_both_valid(self, jas3, table2_frequencies):
        for combine in ("random", "highest_count"):
            cdia = CDIA(jas3, epsilon=0.001, combine=combine, seed=5)
            feed(cdia, table2_frequencies, 10_000)
            result = cdia.frequent_patterns(0.05)
            assert sum(result.values()) >= 0.9, combine

    def test_seeded_reproducibility(self, jas3, table2_frequencies):
        results = []
        for _ in range(2):
            cdia = CDIA(jas3, epsilon=0.005, combine="random", seed=11)
            feed(cdia, table2_frequencies, 4000, seed=2)
            results.append(cdia.frequent_patterns(0.05))
        assert results[0] == results[1]

    def test_entry_count_bounded_under_noise(self, jas3):
        cdia = CDIA(jas3, epsilon=0.05)
        rng = random.Random(1)
        for _ in range(5000):
            cdia.record(AccessPattern.from_mask(jas3, rng.randrange(8)))
        assert cdia.entry_count <= 8

    def test_reset(self, jas3, ap3):
        cdia = CDIA(jas3, epsilon=0.1)
        cdia.record(ap3("A"))
        cdia.reset()
        assert cdia.n_requests == 0 and cdia.entry_count == 0

    def test_rejects_mismatched_lattice(self, jas3):
        from repro.core.lattice import AccessPatternLattice

        other = AccessPatternLattice(JoinAttributeSet(["X", "Y"]))
        with pytest.raises(ValueError):
            CDIA(jas3, 0.05, lattice=other)


class TestMakeAssessor:
    @pytest.mark.parametrize("name", ASSESSOR_NAMES)
    def test_builds_each(self, name, jas3):
        assessor = make_assessor(name, jas3)
        assert assessor.jas == jas3

    def test_types(self, jas3):
        assert isinstance(make_assessor("sria", jas3), SRIA)
        assert isinstance(make_assessor("csria", jas3), CSRIA)
        assert isinstance(make_assessor("dia", jas3), DIA)
        assert isinstance(make_assessor("cdia-random", jas3), CDIA)
        cdia = make_assessor("cdia-highest", jas3)
        assert isinstance(cdia, CDIA) and cdia.combine == "highest_count"

    def test_unknown_rejected(self, jas3):
        with pytest.raises(ValueError):
            make_assessor("magic", jas3)


@settings(max_examples=20, deadline=None)
@given(
    masks=st.lists(st.integers(0, 7), min_size=50, max_size=1000),
    epsilon=st.sampled_from([0.02, 0.05]),
    theta=st.sampled_from([0.15, 0.3]),
)
def test_property_all_compact_assessors_cover_heavy_patterns(masks, epsilon, theta):
    """For any request stream, every pattern with true frequency >= theta is
    reported by CSRIA directly and by CDIA directly-or-via-generalization."""
    jas = JoinAttributeSet(["A", "B", "C"])
    requests = [AccessPattern.from_mask(jas, m) for m in masks]
    csria, cdia = CSRIA(jas, epsilon), CDIA(jas, epsilon, combine="highest_count")
    for ap in requests:
        csria.record(ap)
        cdia.record(ap)
    true = Counter(requests)
    n = len(requests)
    cs = csria.frequent_patterns(theta)
    cd = cdia.frequent_patterns(theta)
    for ap, count in true.items():
        if count / n >= theta:
            assert ap in cs
            assert ap in cd or any(r.provides_search_benefit_to(ap) for r in cd)
