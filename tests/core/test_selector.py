"""Tests for index-configuration selection (and the Table II validation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.cost_model import WorkloadStatistics, estimate_cd
from repro.core.index_config import IndexConfiguration
from repro.core.selector import (
    IndexSelector,
    allocation_count,
    enumerate_allocations,
    select_exhaustive,
    select_greedy,
    select_hash_patterns,
)


def make_stats(freqs, **kw):
    defaults = dict(lambda_d=100.0, lambda_r=100.0, window=10.0)
    defaults.update(kw)
    return WorkloadStatistics(frequencies=freqs, **defaults)


class TestEnumeration:
    def test_small_case(self):
        allocs = list(enumerate_allocations([1, 1], 2))
        assert set(allocs) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_budget_respected(self):
        for alloc in enumerate_allocations([5, 5, 5], 4):
            assert sum(alloc) <= 4

    def test_caps_respected(self):
        for alloc in enumerate_allocations([2, 1, 0], 10):
            assert alloc[0] <= 2 and alloc[1] <= 1 and alloc[2] == 0

    def test_count_matches(self):
        caps, budget = [3, 2, 4], 5
        assert allocation_count(caps, budget) == len(list(enumerate_allocations(caps, budget)))

    @given(
        caps=st.lists(st.integers(0, 4), min_size=1, max_size=4),
        budget=st.integers(0, 8),
    )
    def test_count_property(self, caps, budget):
        assert allocation_count(caps, budget) == len(list(enumerate_allocations(caps, budget)))


class TestExhaustiveSelection:
    def test_single_hot_pattern_gets_all_useful_bits(self, jas3, ap3):
        stats = make_stats({ap3("A"): 1.0}, domain_bits={"A": 6})
        best = select_exhaustive(stats, jas3, 16)
        assert best.bits_for_attribute("A") == 6
        assert best.bits_for_attribute("B") == 0
        assert best.bits_for_attribute("C") == 0

    def test_respects_budget(self, jas3, ap3):
        stats = make_stats({ap3("A", "B", "C"): 1.0})
        best = select_exhaustive(stats, jas3, 5)
        assert best.total_bits <= 5

    def test_tie_breaks_to_fewer_bits(self, jas3, ap3):
        # A pattern over a 1-value domain: bits are useless, the all-zero
        # allocation must win the tie.
        stats = make_stats({ap3("A"): 1.0}, domain_bits={"A": 0, "B": 0, "C": 0})
        best = select_exhaustive(stats, jas3, 8)
        assert best.total_bits == 0

    def test_zero_budget(self, jas3, ap3):
        stats = make_stats({ap3("A"): 1.0})
        assert select_exhaustive(stats, jas3, 0).total_bits == 0


class TestTable2Validation:
    """The paper's own worked example validates the model + selector."""

    def test_full_statistics_optimum(self, jas3, table2_frequencies):
        stats = make_stats(table2_frequencies)
        best = select_exhaustive(stats, jas3, 4)
        assert best == IndexConfiguration(jas3, {"A": 1, "B": 1, "C": 2})

    def test_csria_truncated_optimum(self, jas3, table2_frequencies):
        truncated = {ap: f for ap, f in table2_frequencies.items() if f >= 0.05}
        stats = make_stats(truncated)
        best = select_exhaustive(stats, jas3, 4)
        assert best == IndexConfiguration(jas3, {"B": 1, "C": 3})

    def test_full_beats_truncated_on_true_workload(self, jas3, table2_frequencies):
        """The IC chosen from full statistics must serve the true workload
        at least as cheaply as the IC chosen from truncated statistics."""
        stats_true = make_stats(table2_frequencies)
        ic_full = select_exhaustive(stats_true, jas3, 4)
        truncated = {ap: f for ap, f in table2_frequencies.items() if f >= 0.05}
        ic_trunc = select_exhaustive(make_stats(truncated), jas3, 4)
        assert estimate_cd(ic_full, stats_true) <= estimate_cd(ic_trunc, stats_true)


class TestGreedySelection:
    def test_matches_exhaustive_on_easy_case(self, jas3, ap3):
        stats = make_stats({ap3("A"): 0.9, ap3("B"): 0.1}, domain_bits={"A": 8, "B": 8, "C": 8})
        greedy = select_greedy(stats, jas3, 10)
        exact = select_exhaustive(stats, jas3, 10)
        assert estimate_cd(greedy, stats) <= estimate_cd(exact, stats) * 1.15

    def test_stops_when_no_improvement(self, jas3, ap3):
        stats = make_stats({ap3("A"): 1.0}, domain_bits={"A": 3})
        best = select_greedy(stats, jas3, 64)
        assert best.total_bits <= 3

    @settings(max_examples=20, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 1.0), min_size=3, max_size=3),
        budget=st.integers(1, 12),
    )
    def test_greedy_never_worse_than_empty(self, weights, budget):
        jas = JoinAttributeSet(["A", "B", "C"])
        freqs = {
            AccessPattern.from_mask(jas, m + 1): w
            for m, w in enumerate(weights)
        }
        stats = make_stats(freqs, domain_bits={"A": 8, "B": 8, "C": 8})
        greedy = select_greedy(stats, jas, budget)
        empty = IndexConfiguration(jas, [0, 0, 0])
        assert estimate_cd(greedy, stats) <= estimate_cd(empty, stats)


class TestIndexSelector:
    def test_uses_exhaustive_for_small_space(self, jas3, ap3):
        sel = IndexSelector(jas3, 6)
        stats = make_stats({ap3("A"): 1.0}, domain_bits={"A": 4})
        assert sel.select(stats) == select_exhaustive(stats, jas3, 6)

    def test_falls_back_to_greedy(self, ap3):
        jas = JoinAttributeSet([f"a{i}" for i in range(8)])
        sel = IndexSelector(jas, 32, exhaustive_limit=100)
        ap = AccessPattern.from_attributes(jas, ["a0"])
        stats = make_stats({ap: 1.0}, domain_bits={"a0": 6})
        best = sel.select(stats)
        assert best.bits_for_attribute("a0") == 6

    def test_rejects_negative_budget(self, jas3):
        with pytest.raises(ValueError):
            IndexSelector(jas3, -1)


class TestHashPatternSelection:
    def test_top_k_by_frequency(self, jas3, table2_frequencies):
        top = select_hash_patterns(table2_frequencies, 2)
        freqs = sorted(table2_frequencies.values(), reverse=True)
        assert [table2_frequencies[p] for p in top] == freqs[:2]

    def test_excludes_full_scan(self, jas3, ap3):
        top = select_hash_patterns({ap3(): 0.9, ap3("A"): 0.1}, 2)
        assert top == [ap3("A")]

    def test_deterministic_tie_break(self, jas3, ap3):
        top = select_hash_patterns({ap3("B"): 0.5, ap3("A"): 0.5}, 1)
        assert top == [ap3("A")]  # lower mask wins

    def test_k_larger_than_patterns(self, jas3, ap3):
        assert len(select_hash_patterns({ap3("A"): 1.0}, 5)) == 1

    def test_rejects_bad_k(self, jas3, ap3):
        with pytest.raises(ValueError):
            select_hash_patterns({ap3("A"): 1.0}, 0)


class TestFleetSelection:
    """select_fleet / FleetSelector: the divergent configuration set."""

    def multi_pattern_stats(self, ap3):
        # Four equally frequent patterns an 8-bit budget cannot serve from
        # one key map — the regime where divergence pays.
        return make_stats(
            {ap3("A"): 0.25, ap3("B"): 0.25, ap3("C"): 0.25, ap3("A", "B", "C"): 0.25},
            lambda_d=200.0,
            lambda_r=2000.0,
            window=50.0,
            domain_bits={"A": 8, "B": 8, "C": 8},
        )

    def test_k1_reduces_to_select_exhaustive(self, jas3, table2_frequencies):
        from repro.core.selector import select_fleet

        stats = make_stats(table2_frequencies, domain_bits={"A": 6, "B": 6, "C": 6})
        (only,) = select_fleet(stats, jas3, 8, 1)
        assert only == select_exhaustive(stats, jas3, 8)

    def test_deterministic(self, jas3, ap3):
        from repro.core.selector import select_fleet

        stats = self.multi_pattern_stats(ap3)
        first = select_fleet(stats, jas3, 8, 3)
        assert all(select_fleet(stats, jas3, 8, 3) == first for _ in range(3))

    def test_divergent_set_never_costs_more_than_k_copies_of_best(
        self, jas3, ap3
    ):
        from repro.core.selector import fleet_cost, select_fleet

        stats = self.multi_pattern_stats(ap3)
        fleet = select_fleet(stats, jas3, 8, 3)
        best = select_exhaustive(stats, jas3, 8)
        assert fleet_cost(list(fleet), stats) <= fleet_cost([best] * 3, stats)
        # and on this multi-pattern workload it is strictly better:
        assert fleet_cost(list(fleet), stats) < fleet_cost([best] * 3, stats)

    def test_per_replica_and_fleet_budgets_respected(self, jas3, ap3):
        from repro.core.selector import select_fleet

        stats = self.multi_pattern_stats(ap3)
        fleet = select_fleet(stats, jas3, 8, 3, fleet_bit_budget=12)
        assert all(cfg.total_bits <= 8 for cfg in fleet)
        assert sum(cfg.total_bits for cfg in fleet) <= 12

    def test_selector_class_matches_free_function(self, jas3, ap3):
        from repro.core.selector import FleetSelector, select_fleet

        stats = self.multi_pattern_stats(ap3)
        selector = FleetSelector(jas3, 8, 3)
        assert selector.select(stats) == select_fleet(stats, jas3, 8, 3)

    def test_rejects_bad_k(self, jas3, ap3):
        from repro.core.selector import FleetSelector, select_fleet

        stats = self.multi_pattern_stats(ap3)
        with pytest.raises(ValueError):
            select_fleet(stats, jas3, 8, 0)
        with pytest.raises(ValueError):
            FleetSelector(jas3, 8, 0)

    def test_narrow_workload_repeats_the_best_configuration(self, jas3, ap3):
        from repro.core.selector import select_fleet

        stats = make_stats({ap3("A"): 1.0}, domain_bits={"A": 4})
        fleet = select_fleet(stats, jas3, 8, 3)
        # One hot pattern: slot 0 carries the single best key map, and the
        # extra replicas deterministically take the cheapest (zero-bit)
        # configuration — adding maintenance with no search gain loses to
        # adding nothing.
        assert fleet[0] == select_exhaustive(stats, jas3, 8)
        assert fleet[1] == fleet[2]
        assert fleet[1].total_bits == 0
