"""Tests for compiled probe plans and their invalidation discipline.

The plan cache is pure derived state, so the load-bearing properties are
(1) a plan computes exactly what the index used to re-derive per probe,
(2) every key-map change (reconfigure, budgeted migration) invalidates or
re-scopes the cache, and (3) mid-migration the draining and fresh
structures each probe under *their own* configuration's plans.
"""

import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.bit_index import make_bit_index
from repro.core.index_config import IndexConfiguration
from repro.core.probe_plan import (
    Matcher,
    ProbePlan,
    ProbePlanCache,
    compile_matcher,
    compile_probe_plan,
    _compile_selector,
)
from repro.engine.tuples import StreamTuple
from repro.storage import StateStore


def config(jas3, bits=(5, 2, 3)):
    return IndexConfiguration(jas3, list(bits))


class TestProbePlan:
    def test_fixed_positions_carry_name_and_width(self, jas3, ap3):
        plan = ProbePlan(config(jas3), ap3("A", "C"))
        assert plan.fixed == ((0, "A", 5), (2, "C", 3))

    def test_zero_width_attributes_are_not_fixed(self, jas3, ap3):
        # B carries 0 bits: probing it fixes nothing in the key space.
        plan = ProbePlan(config(jas3, (5, 0, 3)), ap3("A", "B"))
        assert plan.fixed == ((0, "A", 5),)
        assert plan.wildcard_bits == 3  # all of C remains free

    def test_wildcard_bits_match_configuration(self, jas3, ap3):
        cfg = config(jas3)
        for ap in (ap3(), ap3("A"), ap3("B", "C"), ap3("A", "B", "C")):
            assert ProbePlan(cfg, ap).wildcard_bits == cfg.wildcard_bits(ap)

    def test_enumerated_is_min_of_shift_and_live(self, jas3, ap3):
        plan = ProbePlan(config(jas3), ap3("A"))  # 5 wildcard bits -> cap 32
        assert plan.enumeration_cap == 32
        assert plan.enumerated(7) == 7
        assert plan.enumerated(32) == 32
        assert plan.enumerated(1000) == 32

    def test_huge_wildcard_width_never_caps(self, jas3, ap3):
        plan = ProbePlan(IndexConfiguration(jas3, [0, 0, 64]), ap3("A", "B"))
        assert plan.enumeration_cap is None
        assert plan.enumerated(10**9) == 10**9

    def test_rejects_foreign_jas(self, jas3):
        other = JoinAttributeSet(["X", "Y"])
        ap = AccessPattern.from_attributes(other, ["X"])
        with pytest.raises(ValueError, match="different JAS"):
            ProbePlan(config(jas3), ap)

    def test_compile_is_memoized(self, jas3, ap3):
        cfg = config(jas3)
        assert compile_probe_plan(cfg, ap3("A")) is compile_probe_plan(cfg, ap3("A"))


class TestSelectors:
    """The specialised filters must agree with the generic predicate for
    every arity, including operand order (item on the left)."""

    ITEMS = [
        {"A": a, "B": b, "C": c}
        for a in range(3)
        for b in range(2)
        for c in range(2)
    ]

    @pytest.mark.parametrize(
        "attrs", [(), ("A",), ("A", "B"), ("A", "B", "C")]
    )
    def test_matches_generic_filter_and_order(self, attrs):
        select = _compile_selector(attrs)
        values = {"A": 1, "B": 0, "C": 1}
        expected = [
            item
            for item in self.ITEMS
            if all(item[a] == values[a] for a in attrs)
        ]
        got = select(self.ITEMS, values)
        assert got == expected  # same items, same (insertion) order
        assert all(g is e for g, e in zip(got, expected))

    def test_four_plus_attributes_use_generic_path(self):
        jas = JoinAttributeSet(["A", "B", "C", "D"])
        ap = AccessPattern.from_attributes(jas, ["A", "B", "C", "D"])
        matcher = Matcher(ap)
        items = [{"A": 1, "B": 2, "C": 3, "D": 4}, {"A": 1, "B": 2, "C": 3, "D": 5}]
        assert matcher.select(items, items[0]) == [items[0]]


class TestMatcher:
    def test_memoized_per_pattern(self, ap3):
        assert compile_matcher(ap3("B")) is compile_matcher(ap3("B"))

    def test_full_scan_flag(self, ap3):
        assert compile_matcher(ap3()).is_full_scan
        assert not compile_matcher(ap3("A")).is_full_scan


class TestCacheInvalidation:
    def test_lookup_populates_by_mask(self, jas3, ap3):
        cache = ProbePlanCache(config(jas3))
        ap = ap3("A", "B")
        plan = cache.lookup(ap)
        assert len(cache) == 1 and ap.mask in cache
        assert cache.lookup(ap) is plan

    def test_invalidate_drops_plans_and_rebinds(self, jas3, ap3):
        cache = ProbePlanCache(config(jas3))
        cache.lookup(ap3("A"))
        new = config(jas3, (1, 8, 1))
        cache.invalidate(new)
        assert len(cache) == 0
        assert cache.config == new
        assert cache.key_plan.entries == (("A", 1), ("B", 8), ("C", 1))
        assert cache.lookup(ap3("A")).wildcard_bits == new.wildcard_bits(ap3("A"))

    def test_reconfigure_invalidates_the_index_cache(self, jas3, ap3):
        index = make_bit_index(jas3, [5, 2, 3])
        stale = index.probe_plans.lookup(ap3("A"))
        assert stale.wildcard_bits == 5

        new = IndexConfiguration(jas3, [2, 2, 2])
        index.reconfigure(new)
        assert len(index.probe_plans) == 0
        assert index.probe_plans.config == new
        assert index.probe_plans.lookup(ap3("A")).wildcard_bits == 4

    def test_search_results_survive_reconfigure(self, jas3, ap3):
        """End to end: cached plans never leak a stale key map into results."""
        index = make_bit_index(jas3, [5, 2, 3])
        items = [{"A": i % 4, "B": i % 3, "C": i % 5} for i in range(40)]
        for item in items:
            index.insert(item)
        ap, values = ap3("A", "C"), {"A": 2, "C": 1}
        expected = [i for i in items if i["A"] == 2 and i["C"] == 1]

        def key(tuples):
            return sorted((t["A"], t["B"], t["C"]) for t in tuples)

        before = index.search(ap, values).matches
        assert key(before) == key(expected)
        assert index.search(ap, values).matches == before  # deterministic order
        index.reconfigure(IndexConfiguration(jas3, [1, 6, 1]))
        after = index.search(ap, values).matches
        assert key(after) == key(expected)
        assert index.search(ap, values).matches == after


class TestDualStructureMigration:
    """During a budgeted migration two structures coexist; each must probe
    with plans compiled against its *own* configuration."""

    def populated_store(self, jas3, budget=3):
        store = StateStore(
            "S",
            jas3,
            make_bit_index(jas3, [2, 2, 2]),
            window=1000,
            migration_budget=budget,
        )
        for i in range(10):
            store.insert(
                StreamTuple("S", i, {"A": i % 4, "B": i % 3, "C": i % 5}), i
            )
        return store

    def test_each_structure_keeps_its_own_plans(self, jas3, ap3):
        store = self.populated_store(jas3)
        old_cfg = store.index.config
        store.probe(ap3("A"), {"A": 1})  # warm the pre-migration cache

        new_cfg = IndexConfiguration(jas3, [4, 1, 1])
        store.lifecycle.begin(new_cfg)
        assert store.migration_active
        draining, active = store.lifecycle.draining, store.index
        assert draining.probe_plans.config == old_cfg
        assert active.probe_plans.config == new_cfg

        store.probe(ap3("A"), {"A": 1})
        assert draining.probe_plans.lookup(ap3("A")).wildcard_bits == old_cfg.wildcard_bits(ap3("A"))
        assert active.probe_plans.lookup(ap3("A")).wildcard_bits == new_cfg.wildcard_bits(ap3("A"))

    def test_mid_migration_probe_is_complete_and_ordered(self, jas3, ap3):
        """A probe served by both structures returns exactly the tuples a
        never-migrated store returns, in the same order."""
        reference = self.populated_store(jas3, budget=None)
        store = self.populated_store(jas3)
        ap, values = ap3("A"), {"A": 1}

        store.lifecycle.begin(IndexConfiguration(jas3, [4, 1, 1]))
        store.lifecycle.step()  # part drained, part still in the old structure
        assert store.migration_active

        expected = [t["C"] for t in reference.probe(ap, values).matches]
        got = [t["C"] for t in store.probe(ap, values).matches]
        assert sorted(got) == sorted(expected) and len(got) == len(expected)

        while store.migration_active:
            store.lifecycle.step()
        assert sorted(t["C"] for t in store.probe(ap, values).matches) == sorted(expected)
