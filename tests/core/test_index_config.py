"""Tests for index configurations (the bit-address key map)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.index_config import IndexConfiguration, uniform_configuration


class TestConstruction:
    def test_from_sequence(self, jas3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        assert ic.bits == (5, 2, 3)
        assert ic.total_bits == 10

    def test_from_mapping(self, jas3):
        ic = IndexConfiguration(jas3, {"A": 5, "C": 3})
        assert ic.bits == (5, 0, 3)

    def test_rejects_wrong_length(self, jas3):
        with pytest.raises(ValueError):
            IndexConfiguration(jas3, [1, 2])

    def test_rejects_unknown_attr(self, jas3):
        with pytest.raises(ValueError):
            IndexConfiguration(jas3, {"Z": 1})

    def test_rejects_negative(self, jas3):
        with pytest.raises(ValueError):
            IndexConfiguration(jas3, [1, -1, 0])

    def test_equality_and_hash(self, jas3):
        a = IndexConfiguration(jas3, [1, 2, 3])
        b = IndexConfiguration(jas3, {"A": 1, "B": 2, "C": 3})
        assert a == b and hash(a) == hash(b)

    def test_with_bits(self, jas3):
        ic = IndexConfiguration(jas3, [1, 2, 3]).with_bits("B", 7)
        assert ic.bits == (1, 7, 3)

    def test_repr_mentions_widths(self, jas3):
        assert "A:5" in repr(IndexConfiguration(jas3, [5, 0, 3]))


class TestPatternBits:
    def test_bits_for_pattern(self, jas3, ap3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        assert ic.bits_for_pattern(ap3("A", "C")) == 8
        assert ic.bits_for_pattern(ap3()) == 0

    def test_wildcard_bits(self, jas3, ap3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        assert ic.wildcard_bits(ap3("A", "C")) == 2
        assert ic.wildcard_bits(ap3()) == 10

    def test_indexed_attributes(self, jas3):
        ic = IndexConfiguration(jas3, [5, 0, 3])
        assert ic.indexed_attributes == ("A", "C")

    def test_as_pattern(self, jas3, ap3):
        assert IndexConfiguration(jas3, [5, 0, 3]).as_pattern() == ap3("A", "C")

    def test_rejects_foreign_pattern(self, jas3):
        ic = IndexConfiguration(jas3, [1, 1, 1])
        foreign = AccessPattern.from_attributes(JoinAttributeSet(["X"]), ["X"])
        with pytest.raises(ValueError):
            ic.bits_for_pattern(foreign)


class TestBucketMapping:
    def test_bucket_key_shape(self, jas3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        key = ic.bucket_key({"A": 10, "B": 20, "C": 30})
        assert len(key) == 3
        assert 0 <= key[0] < 32 and 0 <= key[1] < 4 and 0 <= key[2] < 8

    def test_zero_bit_attribute_contributes_zero(self, jas3):
        ic = IndexConfiguration(jas3, [4, 0, 4])
        k1 = ic.bucket_key({"A": 1, "B": 100, "C": 2})
        k2 = ic.bucket_key({"A": 1, "B": 999, "C": 2})
        assert k1 == k2

    def test_bucket_id_range(self, jas3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        for v in range(100):
            bid = ic.bucket_id({"A": v, "B": v * 7, "C": v * 13})
            assert 0 <= bid < 2**10

    def test_bucket_id_consistent_with_key(self, jas3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        values = {"A": 42, "B": 17, "C": 3}
        key = ic.bucket_key(values)
        assert ic.bucket_id(values) == (key[0] << 5) | (key[1] << 3) | key[2]

    def test_deterministic(self, jas3):
        ic = IndexConfiguration(jas3, [5, 2, 3])
        v = {"A": "x", "B": 2.5, "C": None}
        assert ic.bucket_key(v) == ic.bucket_key(v)

    def test_probe_fragments_only_bitted_attrs(self, jas3, ap3):
        ic = IndexConfiguration(jas3, [4, 0, 4])
        frags = ic.probe_fragments(ap3("A", "B"), {"A": 1, "B": 2})
        assert list(frags) == [0]  # B has no bits, contributes no constraint

    @given(st.integers(), st.integers(), st.integers())
    def test_equal_values_same_bucket(self, a, b, c):
        jas = JoinAttributeSet(["A", "B", "C"])
        ic = IndexConfiguration(jas, [6, 5, 5])
        v = {"A": a, "B": b, "C": c}
        assert ic.bucket_key(v) == ic.bucket_key(dict(v))


class TestUniformConfiguration:
    def test_even_split(self, jas3):
        assert uniform_configuration(jas3, 9).bits == (3, 3, 3)

    def test_remainder_to_early_attrs(self, jas3):
        assert uniform_configuration(jas3, 10).bits == (4, 3, 3)

    def test_zero(self, jas3):
        assert uniform_configuration(jas3, 0).total_bits == 0

    def test_rejects_negative(self, jas3):
        with pytest.raises(ValueError):
            uniform_configuration(jas3, -1)
