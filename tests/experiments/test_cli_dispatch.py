"""``python -m repro`` dispatch: exit codes, usage errors, new engine flags."""

import pytest

import repro.__main__ as main_mod
from repro.experiments import run as run_cli


class TestExitCodes:
    def test_no_args_prints_banner(self, capsys):
        assert main_mod.main([]) == 0
        assert "subcommands" in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main_mod.main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["run", "profile", "figures", "slo"])
    def test_unknown_flag_exits_2_with_usage_no_traceback(self, command, capsys):
        rc = main_mod.main([command, "--definitely-not-a-flag"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage" in captured.err.lower()
        assert "Traceback" not in captured.err

    def test_banner_enumerates_every_subcommand(self, capsys):
        """The help text and the dispatch table must not drift apart."""
        main_mod.main([])
        banner = capsys.readouterr().out
        for command in main_mod.COMMANDS:
            assert f"\n  {command} " in banner, command

    def test_help_flag_exits_0(self, capsys):
        assert main_mod.main(["run", "--help"]) == 0
        assert "usage: repro run" in capsys.readouterr().out

    def test_string_system_exit_becomes_usage_error(self, capsys, monkeypatch):
        """exit("message") from a subcommand prints the message, code 2."""

        class Fake:
            @staticmethod
            def main(argv):
                raise SystemExit("bad invocation")

        monkeypatch.setitem(main_mod.COMMANDS, "fake", "fakemod")
        monkeypatch.setattr(
            "importlib.import_module", lambda name: Fake, raising=False
        )
        assert main_mod.main(["fake"]) == 2
        assert "bad invocation" in capsys.readouterr().err

    def test_none_system_exit_is_success(self, monkeypatch):
        class Fake:
            @staticmethod
            def main(argv):
                raise SystemExit(None)

        monkeypatch.setitem(main_mod.COMMANDS, "fake", "fakemod")
        monkeypatch.setattr(
            "importlib.import_module", lambda name: Fake, raising=False
        )
        assert main_mod.main(["fake"]) == 0

    def test_exception_in_subcommand_exits_1(self, capsys, monkeypatch):
        class Fake:
            @staticmethod
            def main(argv):
                raise RuntimeError("boom")

        monkeypatch.setitem(main_mod.COMMANDS, "fake", "fakemod")
        monkeypatch.setattr(
            "importlib.import_module", lambda name: Fake, raising=False
        )
        assert main_mod.main(["fake"]) == 1
        assert "boom" in capsys.readouterr().err


class TestEngineFlags:
    def test_bad_scheduler_exits_2(self, capsys):
        rc = main_mod.main(["run", "--scheduler", "lifo"])
        assert rc == 2
        assert "usage" in capsys.readouterr().err.lower()

    def test_partitions_must_be_positive(self, capsys):
        rc = main_mod.main(["run", "--partitions", "0"])
        assert rc == 2
        assert "--partitions must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_batch_size_must_be_positive(self, value, capsys):
        rc = main_mod.main(["run", "--batch-size", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert f"--batch-size must be >= 1, got {value}" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("value", ["2.5", "abc"])
    def test_batch_size_must_be_an_integer(self, value, capsys):
        rc = main_mod.main(["run", "--batch-size", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage" in captured.err.lower()
        assert "Traceback" not in captured.err

    def test_batched_run_succeeds(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "12", "--no-train", "--batch-size", "7"]
        )
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_partitioned_backlog_run_succeeds(self, capsys):
        rc = run_cli.main(
            [
                "--schemes",
                "scan",
                "--ticks",
                "12",
                "--no-train",
                "--partitions",
                "2",
                "--scheduler",
                "backlog",
            ]
        )
        assert rc == 0
        assert "scan" in capsys.readouterr().out


class TestFleetFlags:
    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_fleet_must_be_positive(self, value, capsys):
        rc = main_mod.main(["run", "--fleet", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert f"--fleet must be >= 1, got {value}" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("value", ["2.5", "three"])
    def test_fleet_must_be_an_integer(self, value, capsys):
        rc = main_mod.main(["run", "--fleet", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage" in captured.err.lower()
        assert "Traceback" not in captured.err

    def test_fleet_and_partitions_are_mutually_exclusive(self, capsys):
        rc = main_mod.main(["run", "--fleet", "2", "--partitions", "2"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "mutually exclusive" in captured.err
        assert "Traceback" not in captured.err

    def test_fleet_run_prints_the_replica_table(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "10", "--no-train", "--fleet", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet routing (scan, K=2)" in out
        assert "share" in out

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_fleet_subcommand_fleet_must_be_positive(self, value, capsys):
        rc = main_mod.main(["fleet", "--fleet", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert f"--fleet must be >= 1, got {value}" in captured.err
        assert "Traceback" not in captured.err

    def test_fleet_subcommand_fault_replica_must_be_in_range(self, capsys):
        rc = main_mod.main(["fleet", "--fleet", "2", "--fault-replica", "5"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--fault-replica must be in [0, 2)" in captured.err

    def test_fleet_subcommand_succeeds(self, capsys):
        rc = main_mod.main(
            [
                "fleet",
                "--scheme",
                "scan",
                "--fleet",
                "2",
                "--ticks",
                "10",
                "--no-train",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-replica fleet report" in out
        assert "fleet event timeline" in out


class TestSloFlags:
    @pytest.mark.parametrize("bad", ["p95<8@120", "nonsense", "p0<=8@120"])
    def test_bad_slo_spec_exits_2(self, bad, capsys):
        rc = main_mod.main(["run", "--slo", bad])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage" in captured.err.lower()
        assert "Traceback" not in captured.err

    def test_slo_report_requires_slo(self, capsys):
        rc = main_mod.main(["run", "--slo-report", "out/"])
        assert rc == 2
        assert "--slo-report requires --slo" in capsys.readouterr().err

    def test_armed_run_prints_latency_table(self, capsys, tmp_path):
        rc = run_cli.main(
            [
                "--schemes", "scan", "--ticks", "12", "--no-train",
                "--slo", "p95<=8@10",
                "--slo-report", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "latency / SLO (p95<=8@10)" in out
        report = tmp_path / "paper_scan_slo.jsonl"
        assert report.exists()
        import json

        records = [json.loads(line) for line in report.read_text().splitlines()]
        assert records[0]["record"] == "latency"

    def test_slo_subcommand_bad_scenario_exits_2(self, capsys):
        rc = main_mod.main(["slo", "--scenarios", "nope"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_slo_subcommand_bad_spec_exits_2(self, capsys):
        rc = main_mod.main(["slo", "--slo", "oops"])
        assert rc == 2
        assert "usage" in capsys.readouterr().err.lower()


class TestLazyIndexFlags:
    def test_list_backends_exits_0_and_prints_registry(self, capsys):
        rc = main_mod.main(["run", "--list-backends"])
        out = capsys.readouterr().out
        assert rc == 0
        from repro.storage import BACKENDS

        for name in BACKENDS.names():
            assert name in out
        assert "capabilities" in out
        assert "memory shape" in out

    def test_promote_threshold_requires_lazy_index(self, capsys):
        rc = main_mod.main(["run", "--promote-threshold", "3.0"])
        assert rc == 2
        assert "--promote-threshold requires --lazy-index" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1.5"])
    def test_promote_threshold_must_be_positive(self, value, capsys):
        rc = main_mod.main(["run", "--lazy-index", "--promote-threshold", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--promote-threshold must be > 0" in captured.err
        assert "Traceback" not in captured.err

    def test_lazy_run_succeeds(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "12", "--no-train", "--lazy-index"]
        )
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_lazy_profile_prints_crack_telemetry(self, capsys):
        from repro.experiments import profiling

        rc = profiling.main(
            [
                "--scheme", "amri:sria", "--ticks", "20", "--no-train",
                "--lazy-index", "--promote-threshold", "2.0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "lazy-index (cracking) telemetry" in out
        assert "crack_pending" in out

    def test_profile_promote_threshold_requires_lazy(self, capsys):
        from repro.experiments import profiling

        with pytest.raises(SystemExit) as exc:
            profiling.main(["--promote-threshold", "2.0"])
        assert exc.value.code == 2
        assert "--promote-threshold requires --lazy-index" in capsys.readouterr().err


class TestProbeWorkerFlags:
    @pytest.mark.parametrize("value", ["0", "-4"])
    def test_probe_workers_must_be_positive(self, value, capsys):
        rc = main_mod.main(["run", "--probe-workers", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert f"--probe-workers must be >= 1, got {value}" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("value", ["2.5", "four"])
    def test_probe_workers_must_be_an_integer(self, value, capsys):
        rc = main_mod.main(["run", "--probe-workers", value])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage" in captured.err.lower()
        assert "Traceback" not in captured.err

    def test_parallel_probe_run_succeeds(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "12", "--no-train",
             "--probe-workers", "2"]
        )
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_composes_with_batch_size_and_lazy_index(self, capsys):
        rc = run_cli.main(
            ["--schemes", "amri:sria", "--ticks", "12", "--no-train",
             "--probe-workers", "4", "--batch-size", "2", "--lazy-index"]
        )
        assert rc == 0
        assert "amri:sria" in capsys.readouterr().out

    def test_composes_with_partitions(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "12", "--no-train",
             "--probe-workers", "2", "--partitions", "2"]
        )
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_composes_with_fleet(self, capsys):
        rc = run_cli.main(
            ["--schemes", "scan", "--ticks", "10", "--no-train",
             "--probe-workers", "2", "--fleet", "2"]
        )
        assert rc == 0
        assert "fleet routing (scan, K=2)" in capsys.readouterr().out

    def test_banner_mentions_probe_workers(self, capsys):
        main_mod.main([])
        assert "--probe-workers" in capsys.readouterr().out
