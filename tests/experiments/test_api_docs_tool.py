"""Tests for the API-docs generator tool."""

import importlib.util
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "gen_api_docs.py"
spec = importlib.util.spec_from_file_location("gen_api_docs", TOOL)
gen = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gen)


class TestGenerator:
    def test_entry_for_class(self):
        from repro.core import AccessPattern

        lines = gen.entry_for("AccessPattern", AccessPattern)
        text = "\n".join(lines)
        assert "### `AccessPattern" in text
        assert ".provides_search_benefit_to" in text

    def test_entry_for_function(self):
        from repro.core import make_bit_index

        text = "\n".join(gen.entry_for("make_bit_index", make_bit_index))
        assert "make_bit_index(" in text

    def test_entry_for_constant(self):
        text = "\n".join(gen.entry_for("X", ("a", "b")))
        assert "Constant" in text

    def test_all_packages_importable(self):
        for pkg in gen.PACKAGES:
            assert importlib.import_module(pkg)

    def test_committed_output_is_current(self):
        """docs/api.md must match what the tool generates now."""
        docs = Path(__file__).resolve().parents[2] / "docs" / "api.md"
        before = docs.read_text()
        gen.main()
        assert docs.read_text() == before
