"""Tests for the parameter-sweep utility."""

import pytest

from repro.experiments.sweeps import format_sweep, grid_points, run_sweep
from repro.workloads.scenarios import ScenarioParams


class TestGridPoints:
    def test_cartesian_product(self):
        pts = grid_points({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(pts) == 6
        assert {"a": 2, "b": "y"} in pts

    def test_empty_grid(self):
        assert grid_points({}) == [{}]

    def test_single_axis(self):
        assert grid_points({"a": [1]}) == [{"a": 1}]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_sweep(
            {"explore_prob": [0.0, 0.3]},
            schemes=["amri:sria", "scan"],
            ticks=15,
            base_params=ScenarioParams(seed=3, capacity=1e9, memory_budget=1 << 30),
            train=False,
        )

    def test_point_count(self, points):
        assert len(points) == 2

    def test_overrides_recorded(self, points):
        assert [p.overrides["explore_prob"] for p in points] == [0.0, 0.3]

    def test_all_schemes_present(self, points):
        for p in points:
            assert set(p.runs) == {"amri:sria", "scan"}
            assert p.outputs("scan") >= 0

    def test_rejects_empty_schemes(self):
        with pytest.raises(ValueError):
            run_sweep({}, schemes=[], ticks=5)


class TestFormatSweep:
    def test_table_contains_params_and_schemes(self):
        points = run_sweep(
            {"rate": [4]},
            schemes=["scan"],
            ticks=8,
            base_params=ScenarioParams(seed=3, capacity=1e9, memory_budget=1 << 30),
            train=False,
        )
        out = format_sweep(points)
        assert "rate" in out and "scan outputs" in out

    def test_empty(self):
        assert "empty" in format_sweep([])

    def test_death_marker(self):
        points = run_sweep(
            {"rate": [8]},
            schemes=["scan"],
            ticks=60,
            base_params=ScenarioParams(seed=3, capacity=10.0, memory_budget=120_000),
            train=False,
        )
        out = format_sweep(points)
        assert "†" in out
