"""Tests for ``repro profile`` and the package-level subcommand dispatch."""

import json


import repro.__main__ as main_mod
from repro.engine.metrics import MetricsRegistry
from repro.experiments.profiling import main as profile_main
from repro.experiments.profiling import profile_scheme, reconciles
from repro.experiments.reporting import format_component_breakdown, format_cost_profile

TICKS = 25


class TestProfileScheme:
    def test_attribution_reconciles_exactly(self):
        stats, snapshot, meter_total = profile_scheme(
            "paper", "amri:sria", ticks=TICKS, train=False
        )
        # The headline invariant: chronological grand total is bit-identical
        # to the executor's virtual clock — no leakage, no double counting.
        assert snapshot.cost_total == meter_total
        assert reconciles(snapshot, meter_total)
        assert stats.probes > 0
        components = {k[0] for k in snapshot.cost_by("component")}
        assert {"index", "router"} <= components

    def test_reconciles_rejects_leakage(self):
        _, snapshot, meter_total = profile_scheme(
            "paper", "scan", ticks=TICKS, train=False
        )
        assert reconciles(snapshot, meter_total)
        assert not reconciles(snapshot, meter_total + 1.0)

    def test_flight_recorder_capacity_is_honoured(self):
        _, snapshot, _ = profile_scheme(
            "paper", "scan", ticks=TICKS, train=False, flight_recorder_capacity=16
        )
        assert len(snapshot.spans) == 16
        assert snapshot.spans_dropped > 0


class TestProfileCLI:
    def test_profile_run_exports_and_reconciles(self, tmp_path, capsys):
        rc = profile_main(
            [
                "--scheme", "amri:sria", "--ticks", str(TICKS), "--no-train",
                "--metrics", str(tmp_path / "m.jsonl"),
                "--trace", str(tmp_path / "t.jsonl"),
                "--top", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost-unit profile" in out
        assert "== virtual clock" in out and "OK" in out
        records = [
            json.loads(line)
            for line in (tmp_path / "m.jsonl").read_text().splitlines()
        ]
        assert records[-1]["record"] == "aggregate"
        spans = [
            json.loads(line)
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        ]
        assert {"tick", "tuple"} <= {s["name"] for s in spans}

    def test_prometheus_export_format(self, tmp_path):
        rc = profile_main(
            [
                "--scheme", "scan", "--ticks", str(TICKS), "--no-train",
                "--metrics", str(tmp_path / "m.prom"), "--format", "prometheus",
            ]
        )
        assert rc == 0
        text = (tmp_path / "m.prom").read_text()
        assert "# TYPE cost_units_total counter" in text

    def test_unknown_scheme_exits_one(self, capsys):
        assert profile_main(["--scheme", "nope", "--ticks", "5"]) == 1
        assert "profile failed" in capsys.readouterr().err


class TestMainDispatch:
    def test_no_args_prints_banner(self, capsys):
        assert main_mod.main([]) == 0
        assert "subcommands" in capsys.readouterr().out

    def test_help_flag(self, capsys):
        assert main_mod.main(["--help"]) == 0
        assert "profile" in capsys.readouterr().out

    def test_unknown_subcommand_exits_two(self, capsys):
        assert main_mod.main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_profile_subcommand_dispatches(self, capsys):
        rc = main_mod.main(
            ["profile", "--scheme", "scan", "--ticks", "10", "--no-train"]
        )
        assert rc == 0
        assert "cost-unit profile" in capsys.readouterr().out

    def test_failing_subcommand_exits_one(self, capsys):
        rc = main_mod.main(["profile", "--scenario-typo"])
        assert rc == 2  # argparse usage error keeps its exit code

    def test_subcommand_exception_maps_to_one(self, monkeypatch, capsys):
        import repro.experiments.profiling as profiling

        def boom(argv):
            raise RuntimeError("kaput")

        monkeypatch.setattr(profiling, "main", boom)
        assert main_mod.main(["profile"]) == 1
        assert "kaput" in capsys.readouterr().err


class TestReportingTables:
    def make_snapshot(self):
        reg = MetricsRegistry()
        reg.charge(10.0, "index", stream="A", index_kind="bit_address", phase="probe")
        reg.charge(5.0, "router", phase="decide")
        reg.charge(1.0, "output", phase="emit")
        return reg.snapshot()

    def test_format_cost_profile_rows_and_total(self):
        text = format_cost_profile("title", self.make_snapshot(), top_k=2)
        assert "title" in text
        assert "bit_address" in text
        assert "TOTAL" in text
        assert "(1 more)" in text  # third row folded into the remainder line

    def test_format_component_breakdown_columns(self):
        snaps = {"scan": self.make_snapshot(), "amri": self.make_snapshot()}
        text = format_component_breakdown("by component", snaps)
        assert "scan" in text and "amri" in text
        assert "index" in text and "router" in text
