"""Tests for ASCII reporting helpers."""

import pytest

from repro.engine.stats import RunStats
from repro.engine.slo import LatencyTracker, SloMonitor, SloSpec
from repro.experiments.reporting import (
    format_slo_report,
    format_summary,
    format_table,
    format_throughput_figure,
    improvement_pct,
    throughput_series,
)


def make_run(samples, died_at=None):
    rs = RunStats()
    for tick, outputs in samples:
        rs.outputs = outputs
        rs.sample(tick, 0.0, 0, 0)
    rs.died_at = died_at
    return rs


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 444]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestImprovementPct:
    def test_basic(self):
        assert improvement_pct(193, 100) == pytest.approx(93.0)

    def test_zero_loser(self):
        assert improvement_pct(5, 0) == float("inf")
        assert improvement_pct(0, 0) == 0.0


class TestThroughputSeries:
    def test_rows(self):
        runs = {
            "x": make_run([(0, 0), (10, 5)]),
            "y": make_run([(0, 1), (10, 2)]),
        }
        rows = throughput_series(runs, [0, 10])
        assert rows == [[0, 0, 1], [10, 5, 2]]

    def test_dead_run_flatlines(self):
        runs = {"x": make_run([(0, 0), (5, 9)], died_at=5)}
        rows = throughput_series(runs, [0, 5, 20])
        assert rows[-1] == [20, 9]


class TestFigureFormatting:
    def test_contains_title_and_death_note(self):
        runs = {
            "amri": make_run([(0, 0), (100, 50)]),
            "hash": make_run([(0, 0), (40, 7)], died_at=40),
        }
        out = format_throughput_figure("Figure X", runs)
        assert "Figure X" in out
        assert "hash (died)" in out
        assert "out of memory at tick 40" in out

    def test_empty_runs(self):
        out = format_throughput_figure("t", {"x": RunStats()})
        assert "no samples" in out

    def test_summary_lines(self):
        out = format_summary("head", [("A", 193.0, "B", 100.0)])
        assert "+93%" in out
        assert out.startswith("head")


class TestSloReportFormatting:
    def snapshot(self):
        spec = SloSpec.parse("p95<=4@10")
        tracker = LatencyTracker(threshold=spec.threshold_ticks)
        monitor = SloMonitor(spec)
        for v in (0.0, 1.0, 2.0, 9.0):
            tracker.observe("A", v)
        tracker.observe_shed("A", 6.0)
        monitor.end_tick(0, tracker)
        return spec, tracker.snapshot(), monitor

    def test_table_has_quantiles_and_burn(self):
        spec, snap, monitor = self.snapshot()
        out = format_slo_report("title", {"scan": snap}, {"scan": [monitor]})
        assert out.startswith("title")
        header = out.splitlines()[1]
        for column in ("p50", "p95", "p99", "viol%", "breaches", "burn"):
            assert column in header
        row = out.splitlines()[-1]
        assert "scan" in row and "5" in row  # 5 observations

    def test_without_monitors_burn_is_dash(self):
        _, snap, _ = self.snapshot()
        row = format_slo_report("t", {"scan": snap}).splitlines()[-1]
        assert row.rstrip().endswith("-")

    def test_empty_latency_snapshot_renders_dashes(self):
        snap = LatencyTracker().snapshot()
        out = format_slo_report("t", {"scan": snap})
        assert "-" in out.splitlines()[-1]
