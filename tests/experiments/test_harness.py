"""Tests for the experiment harness (training + scheme runs)."""

import pytest

from repro.experiments.harness import (
    run_comparison,
    run_scheme,
    train_initial_state,
)
from repro.workloads.scenarios import PaperScenario, ScenarioParams


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(ScenarioParams(seed=21))


@pytest.fixture(scope="module")
def training(scenario):
    return train_initial_state(scenario, train_ticks=40)


class TestTraining:
    def test_configs_for_every_state(self, scenario, training):
        assert set(training.configs) == set(scenario.query.stream_names)

    def test_configs_within_budget(self, scenario, training):
        for cfg in training.configs.values():
            assert cfg.total_bits <= scenario.params.bit_budget

    def test_frequencies_collected(self, training):
        for freqs in training.frequencies.values():
            assert freqs
            assert all(0 <= f <= 1 for f in freqs.values())

    def test_hash_patterns_sized(self, training):
        pats = training.hash_patterns(2)
        for plist in pats.values():
            assert 1 <= len(plist) <= 2

    def test_training_deterministic(self, scenario):
        a = train_initial_state(scenario, train_ticks=30)
        b = train_initial_state(scenario, train_ticks=30)
        assert a.configs == b.configs


class TestRunScheme:
    def test_trained_run(self, scenario, training):
        stats = run_scheme(
            scenario, "amri:cdia-highest", 30, training=training,
            capacity=1e9, memory_budget=1 << 30,
        )
        assert stats.outputs > 0

    def test_hash_uses_trained_patterns(self, scenario, training):
        stats = run_scheme(
            scenario, "hash:2", 20, training=training,
            capacity=1e9, memory_budget=1 << 30,
        )
        assert stats.probes > 0

    def test_untrained_run(self, scenario):
        stats = run_scheme(scenario, "static", 20, capacity=1e9, memory_budget=1 << 30)
        assert stats.source_tuples > 0


class TestRunComparison:
    def test_runs_all_schemes(self, scenario):
        runs = run_comparison(
            scenario,
            ["amri:sria", "scan"],
            20,
            train=True,
            train_ticks=20,
            capacity=1e9,
            memory_budget=1 << 30,
        )
        assert set(runs) == {"amri:sria", "scan"}
        for stats in runs.values():
            assert stats.source_tuples > 0

    def test_schemes_see_identical_arrivals(self, scenario):
        """Same seed offset: every scheme must process the same tuples."""
        runs = run_comparison(
            scenario,
            ["scan", "amri:sria"],
            15,
            train=False,
            capacity=1e9,
            memory_budget=1 << 30,
        )
        counts = {name: s.source_tuples for name, s in runs.items()}
        assert len(set(counts.values())) == 1
        # with unlimited resources, outputs are index-independent
        outs = {name: s.outputs for name, s in runs.items()}
        assert len(set(outs.values())) == 1
