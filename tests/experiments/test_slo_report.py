"""``repro slo``: the tail-latency/SLO report over multiple scenarios."""

import json

from repro.experiments import slo_report


class TestSloReport:
    def test_reports_both_scenarios_with_quantiles(self, capsys):
        rc = slo_report.main(["--schemes", "scan", "--ticks", "12", "--no-train"])
        out = capsys.readouterr().out
        assert rc == 0
        # One table per scenario, each with the quantile columns.
        assert "paper: latency / SLO (p95<=8@120)" in out
        assert "sensor: latency / SLO (p95<=8@120)" in out
        assert out.count("p50  p95  p99") == 2

    def test_json_report_parses_and_is_tagged(self, capsys, tmp_path):
        path = tmp_path / "report.jsonl"
        rc = slo_report.main(
            [
                "--schemes", "scan", "--scenarios", "paper",
                "--ticks", "12", "--no-train",
                "--slo", "p95<=4@10",
                "--json", str(path),
            ]
        )
        assert rc == 0
        assert "JSONL report written" in capsys.readouterr().out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0] == {
            "record": "slo_report", "objective": "p95<=4@10", "ticks": 12,
        }
        latency = [r for r in records if r["record"] == "latency"]
        assert latency
        assert all(r["scenario"] == "paper" and r["scheme"] == "scan" for r in latency)
        aggregate = next(r for r in latency if r["scope"] == "aggregate")
        assert {"p50", "p95", "p99", "observed", "violations"} <= set(aggregate)

    def test_partitioned_report_runs(self, capsys):
        rc = slo_report.main(
            [
                "--schemes", "scan", "--scenarios", "paper",
                "--ticks", "12", "--no-train", "--partitions", "2",
            ]
        )
        assert rc == 0
        assert "latency / SLO" in capsys.readouterr().out
