"""Tests for the reproduction self-check."""

from repro.experiments import validate


class TestClaimChecks:
    def test_table2_claim_passes(self):
        result = validate.check_table2()
        assert result.passed
        assert "B:1, C:3" in result.measured

    def test_run_all_small_scale(self):
        """The full claim suite at smoke scale: structure over magnitudes."""
        results = validate.run_all(ticks=120, seed=7, train_ticks=40)
        assert len(results) == 5
        by_claim = {r.claim: r for r in results}
        # The exact-equality claims must hold at any scale.
        assert by_claim["Table II worked example (ICs from full vs CSRIA statistics)"].passed
        assert by_claim["DIA == SRIA (same statistics, same run)"].passed

    def test_cli_exit_code(self, capsys):
        rc = validate.main(["--ticks", "120"])
        out = capsys.readouterr().out
        assert "claims reproduced" in out
        assert rc in (0, 1)
