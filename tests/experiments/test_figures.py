"""Smoke tests for the figure-regeneration entry points (tiny scale)."""

import pytest

from repro.core.index_config import IndexConfiguration
from repro.experiments import figures


class TestTable2:
    def test_exact_paper_ics(self):
        result = figures.table2()
        jas = result["ic_true"].jas
        assert result["ic_true"] == IndexConfiguration(jas, {"A": 1, "B": 1, "C": 2})
        assert result["ic_csria"] == IndexConfiguration(jas, {"B": 1, "C": 3})

    def test_csria_deletes_the_4pct_patterns(self, jas3, ap3):
        result = figures.table2()
        assert ap3("A") not in result["csria_frequencies"]
        assert ap3("A", "B") not in result["csria_frequencies"]

    def test_frequencies_match_table(self, jas3):
        freqs = figures.table2_frequencies(jas3)
        assert sum(freqs.values()) == pytest.approx(1.0)
        assert len(freqs) == 7


class TestFigureRuns:
    """Scaled-down runs of the figure harnesses (shape only)."""

    def test_fig6_small(self):
        runs = figures.figure6_assessment(60, seed=5, train_ticks=30)
        assert set(runs) == set(figures.ASSESSMENT_SCHEMES)
        assert runs["amri:sria"].outputs == runs["amri:dia"].outputs

    def test_fig6_hash_small(self):
        runs = figures.figure6_hash(50, seed=5, train_ticks=30, ks=(1, 7))
        assert "hash:1" in runs and "hash:7" in runs and "amri:cdia-highest" in runs

    def test_fig7_small(self):
        runs, best_hash = figures.figure7(50, seed=5, train_ticks=30, ks=(3,))
        assert best_hash == "hash:3"
        assert "amri:cdia-highest" in runs and "static-bitmap" in runs


class TestCLI:
    def test_table2_target(self, capsys):
        assert figures.main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "A:1, B:1, C:2" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            figures.main(["fig99"])


class TestAveragedFig6:
    def test_averaged_means_and_series(self):
        runs, means = figures.figure6_assessment_averaged(
            40, seeds=(5, 6), train_ticks=20
        )
        assert set(means) == set(figures.ASSESSMENT_SCHEMES)
        assert all(v >= 0 for v in means.values())
        # the series dict is the first seed's runs
        assert set(runs) == set(figures.ASSESSMENT_SCHEMES)
        # DIA == SRIA must hold in the mean too
        assert means["amri:dia"] == means["amri:sria"]


class TestPrintHelpers:
    def test_print_fig7_smoke(self, capsys):
        figures.print_fig7(40, seed=5)
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "+93%" in out or "best hash" in out
