"""Tests for parallel experiment execution."""

import pytest

from repro.experiments.parallel import (
    RunSpec,
    compare_parallel,
    execute_spec,
    run_parallel,
)
from repro.workloads.scenarios import ScenarioParams

FAST = ScenarioParams(seed=3, capacity=1e9, memory_budget=1 << 30)


def spec(scheme="amri:sria", seed=3, ticks=15):
    return RunSpec(
        ScenarioParams(seed=seed, capacity=1e9, memory_budget=1 << 30),
        scheme,
        ticks,
        train=False,
    )


class TestRunSpec:
    def test_default_label(self):
        assert spec().display_label() == "amri:sria@seed3"

    def test_custom_label(self):
        s = RunSpec(FAST, "scan", 5, label="mine")
        assert s.display_label() == "mine"


class TestExecution:
    def test_execute_spec(self):
        outcome = execute_spec(spec())
        assert outcome.stats.probes > 0
        assert outcome.outputs == outcome.stats.outputs

    def test_empty(self):
        assert run_parallel([], workers=2) == []

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            run_parallel([spec()], workers=-1)

    def test_serial_path(self):
        outcomes = run_parallel([spec(), spec(seed=4)], workers=0)
        assert len(outcomes) == 2
        assert outcomes[0].spec.params.seed == 3

    def test_parallel_matches_serial(self):
        """Process isolation must not change results."""
        specs = [spec(seed=3), spec(seed=4), spec("scan", seed=3)]
        serial = run_parallel(specs, workers=0)
        parallel = run_parallel(specs, workers=2)
        assert [o.outputs for o in serial] == [o.outputs for o in parallel]
        assert [o.stats.probes for o in serial] == [o.stats.probes for o in parallel]

    def test_results_in_spec_order(self):
        specs = [spec(seed=s) for s in (5, 6, 7)]
        outcomes = run_parallel(specs, workers=3)
        assert [o.spec.params.seed for o in outcomes] == [5, 6, 7]


class TestCompareParallel:
    def test_matches_serial_comparison(self):
        from repro.experiments.harness import run_comparison
        from repro.workloads.scenarios import PaperScenario

        params = ScenarioParams(seed=11, capacity=1e9, memory_budget=1 << 30)
        schemes = ["amri:sria", "scan"]
        parallel = compare_parallel(
            params, schemes, 15, workers=2, train=False
        )
        serial = run_comparison(
            PaperScenario(params), schemes, 15, train=False
        )
        for scheme in schemes:
            assert parallel[scheme].outputs == serial[scheme].outputs
