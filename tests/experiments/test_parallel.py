"""Tests for parallel experiment execution."""

import pickle
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import (
    cached_training,
    clear_training_cache,
    train_initial_state,
)
from repro.experiments.parallel import (
    RunSpec,
    _share_training,
    compare_parallel,
    execute_spec,
    run_parallel,
)
from repro.workloads.scenarios import PaperScenario, ScenarioParams

FAST = ScenarioParams(seed=3, capacity=1e9, memory_budget=1 << 30)


def spec(scheme="amri:sria", seed=3, ticks=15):
    return RunSpec(
        ScenarioParams(seed=seed, capacity=1e9, memory_budget=1 << 30),
        scheme,
        ticks,
        train=False,
    )


class TestRunSpec:
    def test_default_label(self):
        assert spec().display_label() == "amri:sria@seed3"

    def test_custom_label(self):
        s = RunSpec(FAST, "scan", 5, label="mine")
        assert s.display_label() == "mine"


class TestExecution:
    def test_execute_spec(self):
        outcome = execute_spec(spec())
        assert outcome.stats.probes > 0
        assert outcome.outputs == outcome.stats.outputs

    def test_empty(self):
        assert run_parallel([], workers=2) == []

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            run_parallel([spec()], workers=-1)

    def test_serial_path(self):
        outcomes = run_parallel([spec(), spec(seed=4)], workers=0)
        assert len(outcomes) == 2
        assert outcomes[0].spec.params.seed == 3

    def test_parallel_matches_serial(self):
        """Process isolation must not change results."""
        specs = [spec(seed=3), spec(seed=4), spec("scan", seed=3)]
        serial = run_parallel(specs, workers=0)
        parallel = run_parallel(specs, workers=2)
        assert [o.outputs for o in serial] == [o.outputs for o in parallel]
        assert [o.stats.probes for o in serial] == [o.stats.probes for o in parallel]

    def test_results_in_spec_order(self):
        specs = [spec(seed=s) for s in (5, 6, 7)]
        outcomes = run_parallel(specs, workers=3)
        assert [o.spec.params.seed for o in outcomes] == [5, 6, 7]


class TestStorageSpecFields:
    def test_index_backend_override_changes_the_run(self):
        base = execute_spec(
            RunSpec(FAST, "static", 15, train=False)
        )
        overridden = execute_spec(
            RunSpec(FAST, "static", 15, train=False, index_backend="scan")
        )
        # Same arrivals, same outputs; a full-scan state pays different
        # probe-side work, which the stats expose.
        assert base.outputs == overridden.outputs
        assert base.stats.samples[-1].cost_spent != overridden.stats.samples[-1].cost_spent

    def test_budgeted_spec_is_pool_safe(self):
        s = RunSpec(
            ScenarioParams(seed=3, capacity=1e9, memory_budget=1 << 30),
            "amri:sria",
            25,
            train=False,
            migration_budget=20,
        )
        serial, pooled = run_parallel([s], workers=0), run_parallel([s, s], workers=2)
        assert pooled[0].outputs == pooled[1].outputs == serial[0].outputs

    def test_spec_with_storage_fields_pickles(self):
        s = RunSpec(FAST, "static", 5, index_backend="inverted", migration_budget=7)
        assert pickle.loads(pickle.dumps(s)) == s


class TestFaultedDeterminism:
    """Acceptance: identical (scenario seed, fault seed) pairs yield
    byte-identical RunStats and event logs across serial and pool paths."""

    def faulted_spec(self, scheme, *, seed=3, fault_seed=9, ticks=30):
        return RunSpec(
            ScenarioParams(seed=seed),  # default (tight) capacity and budget
            scheme,
            ticks,
            train=False,
            faults="chaos",
            fault_seed=fault_seed,
            degrade=True,
        )

    def test_pool_matches_serial_byte_identical(self):
        specs = [self.faulted_spec(s) for s in ("amri:sria", "scan", "hash:2")]
        serial = run_parallel(specs, workers=0)
        pooled = run_parallel(specs, workers=3)
        for a, b in zip(serial, pooled):
            assert a.stats == b.stats
            assert a.events == b.events
            assert pickle.dumps(a.stats) == pickle.dumps(b.stats)
            assert pickle.dumps(a.events) == pickle.dumps(b.events)

    def test_faulted_runs_record_their_faults(self):
        outcome = execute_spec(self.faulted_spec("scan"))
        assert outcome.stats.faults_injected > 0
        assert any(e.kind == "fault" for e in outcome.events)

    def test_fault_seed_changes_the_run(self):
        a = execute_spec(self.faulted_spec("scan", fault_seed=1, ticks=60))
        b = execute_spec(self.faulted_spec("scan", fault_seed=2, ticks=60))
        assert a.events != b.events

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(0, 500),
        fault_seed=st.integers(0, 500),
        faults=st.sampled_from([None, "arrivals", "memory", "chaos"]),
    )
    def test_property_workers4_equals_workers0(self, seed, fault_seed, faults):
        specs = [
            RunSpec(
                ScenarioParams(seed=seed),
                scheme,
                20,
                train=False,
                faults=faults,
                fault_seed=fault_seed,
                degrade=True,
            )
            for scheme in ("amri:sria", "scan")
        ]
        serial = run_parallel(specs, workers=0)
        pooled = run_parallel(specs, workers=4)
        for a, b in zip(serial, pooled):
            assert a.spec == b.spec
            assert a.stats == b.stats
            assert a.events == b.events


class TestSharedTraining:
    """Acceptance: a pool run fed one shared TrainingResult is bit-identical
    to the workers=0 path that retrains in-process."""

    PARAMS = ScenarioParams(seed=21, capacity=1e9, memory_budget=1 << 30)

    def trained_spec(self, scheme, *, params=None):
        return RunSpec(params or self.PARAMS, scheme, 15, train=True, train_ticks=20)

    def test_training_is_a_cache_not_identity(self):
        """Attaching a training must not change equality, hashing, or repr —
        existing pickled/compared specs stay compatible."""
        bare = self.trained_spec("amri:sria")
        training = cached_training(self.PARAMS, 20)
        loaded = replace(bare, training=training)
        assert loaded == bare
        assert hash(loaded) == hash(bare)
        assert "training" not in repr(loaded)

    def test_spec_with_training_pickles(self):
        s = replace(self.trained_spec("scan"), training=cached_training(self.PARAMS, 20))
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert clone.training.configs == s.training.configs

    def test_cached_training_memoizes_per_key(self):
        clear_training_cache()
        first = cached_training(self.PARAMS, 20)
        assert cached_training(self.PARAMS, 20) is first
        assert cached_training(self.PARAMS, 25) is not first
        clear_training_cache()
        assert cached_training(self.PARAMS, 20) is not first

    def test_share_training_attaches_one_result_per_key(self):
        specs = [
            self.trained_spec("amri:sria"),
            self.trained_spec("scan"),
            RunSpec(self.PARAMS, "scan", 15, train=False),
        ]
        shared = _share_training(specs)
        assert shared[0].training is shared[1].training  # same key -> same object
        assert shared[2].training is None  # untrained specs pass through
        assert _share_training(shared)[0].training is shared[0].training

    def test_cached_training_matches_direct_retrain(self):
        clear_training_cache()
        direct = train_initial_state(PaperScenario(self.PARAMS), train_ticks=20)
        cached = cached_training(self.PARAMS, 20)
        assert cached.configs == direct.configs
        assert cached.frequencies == direct.frequencies

    def test_pool_with_shared_training_matches_serial_retrain(self):
        specs = [self.trained_spec(s) for s in ("amri:sria", "scan", "hash:2")]
        clear_training_cache()
        serial = run_parallel(specs, workers=0)
        clear_training_cache()
        pooled = run_parallel(specs, workers=3)
        for a, b in zip(serial, pooled):
            assert a.stats == b.stats
            assert a.events == b.events
            assert pickle.dumps(a.stats) == pickle.dumps(b.stats)

    def test_shipped_training_matches_in_worker_retrain(self):
        """The pre-shared path must equal what a worker computed on its own
        before this optimisation (spec without a training attached)."""
        spec = self.trained_spec("amri:cdia-highest")
        clear_training_cache()
        retrained = execute_spec(spec)  # resolves via in-process training
        shipped = execute_spec(
            replace(spec, training=cached_training(self.PARAMS, 20))
        )
        assert shipped.stats == retrained.stats
        assert shipped.events == retrained.events


class TestCompareParallel:
    def test_matches_serial_comparison(self):
        from repro.experiments.harness import run_comparison
        from repro.workloads.scenarios import PaperScenario

        params = ScenarioParams(seed=11, capacity=1e9, memory_budget=1 << 30)
        schemes = ["amri:sria", "scan"]
        parallel = compare_parallel(
            params, schemes, 15, workers=2, train=False
        )
        serial = run_comparison(
            PaperScenario(params), schemes, 15, train=False
        )
        for scheme in schemes:
            assert parallel[scheme].outputs == serial[scheme].outputs
