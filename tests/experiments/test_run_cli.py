"""Tests for the generic experiment-runner CLI."""

import csv
import json

import pytest

from repro.experiments import run as run_cli


class TestBuildScenario:
    def test_paper(self):
        sc = run_cli.build_scenario("paper", seed=3)
        assert len(sc.query.streams) == 4

    def test_sensor(self):
        sc = run_cli.build_scenario("sensor", seed=3)
        assert len(sc.query.streams) == 3

    def test_unknown(self):
        with pytest.raises(ValueError):
            run_cli.build_scenario("nope", seed=0)


class TestCLI:
    def test_run_and_csv_export(self, tmp_path, capsys):
        rc = run_cli.main(
            [
                "--schemes",
                "scan,amri:sria",
                "--ticks",
                "15",
                "--train-ticks",
                "10",
                "--no-train",
                "--csv",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "paper scenario" in out
        summary = tmp_path / "paper_summary.csv"
        assert summary.exists()
        with summary.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {r["scheme"] for r in rows} == {"scan", "amri:sria"}
        series = tmp_path / "paper_amri_sria.csv"
        with series.open() as fh:
            srows = list(csv.DictReader(fh))
        assert len(srows) >= 15
        assert int(srows[-1]["outputs"]) >= 0

    def test_sensor_scenario_option(self, capsys):
        rc = run_cli.main(
            ["--scenario", "sensor", "--schemes", "scan", "--ticks", "10", "--no-train"]
        )
        assert rc == 0
        assert "sensor scenario" in capsys.readouterr().out

    def test_fault_injection_flags(self, tmp_path, capsys):
        rc = run_cli.main(
            [
                "--schemes",
                "scan",
                "--ticks",
                "30",
                "--no-train",
                "--faults",
                "chaos",
                "--fault-seed",
                "2",
                "--degrade",
                "--csv",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault timeline (chaos, fault seed 2)" in out
        assert "fault" in out
        events = tmp_path / "paper_events.csv"
        assert events.exists()
        with events.open() as fh:
            rows = list(csv.DictReader(fh))
        assert any(r["kind"] == "fault" for r in rows)
        summary = tmp_path / "paper_summary.csv"
        with summary.open() as fh:
            srows = list(csv.DictReader(fh))
        assert int(srows[0]["faults_injected"]) > 0

    def test_faults_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            run_cli.main(["--schemes", "scan", "--ticks", "5", "--faults", "mayhem"])

    def test_metrics_and_trace_export(self, tmp_path, capsys):
        rc = run_cli.main(
            [
                "--schemes", "scan,amri:sria", "--ticks", "12", "--no-train",
                "--metrics", str(tmp_path / "m"),
                "--trace", str(tmp_path / "t"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost units by component" in out
        for scheme in ("scan", "amri_sria"):
            metrics_file = tmp_path / "m" / f"paper_{scheme}_metrics.jsonl"
            records = [json.loads(l) for l in metrics_file.read_text().splitlines()]
            assert records[-1]["record"] == "aggregate"
            assert records[-1]["cost_total"] > 0
            trace_file = tmp_path / "t" / f"paper_{scheme}_trace.jsonl"
            spans = [json.loads(l) for l in trace_file.read_text().splitlines()]
            assert any(s["name"] == "tick" for s in spans)


class TestIndexBackendFlags:
    def test_unknown_backend_exits_with_registered_names(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli.main(
                ["--schemes", "scan", "--ticks", "5", "--index-backend", "btree"]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown index backend 'btree'" in err
        assert "bit_address" in err and "scan" in err

    def test_backend_override_runs(self, capsys):
        rc = run_cli.main(
            [
                "--schemes", "static", "--ticks", "12", "--no-train",
                "--index-backend", "inverted",
            ]
        )
        assert rc == 0
        assert "static" in capsys.readouterr().out

    def test_migration_budget_must_be_positive(self):
        with pytest.raises(SystemExit):
            run_cli.main(
                ["--schemes", "scan", "--ticks", "5", "--migration-budget", "0"]
            )

    def test_budgeted_migration_run(self, tmp_path, capsys):
        rc = run_cli.main(
            [
                "--schemes", "amri:sria", "--ticks", "45",
                "--train-ticks", "20", "--migration-budget", "30",
                "--csv", str(tmp_path),
            ]
        )
        assert rc == 0
        assert "amri:sria" in capsys.readouterr().out


class TestTrainedPath:
    def test_trained_run_via_cli(self, capsys):
        rc = run_cli.main(
            ["--schemes", "amri:sria", "--ticks", "12", "--train-ticks", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "amri:sria" in out
