"""Shared fixtures for the AMRI reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.lattice import AccessPatternLattice


@pytest.fixture
def jas3() -> JoinAttributeSet:
    """The canonical 3-attribute JAS used by the paper's examples."""
    return JoinAttributeSet(["A", "B", "C"])


@pytest.fixture
def jas4() -> JoinAttributeSet:
    return JoinAttributeSet(["A", "B", "C", "D"])


@pytest.fixture
def lattice3(jas3) -> AccessPatternLattice:
    return AccessPatternLattice(jas3)


@pytest.fixture
def ap3(jas3):
    """Pattern factory over jas3: ap3('A', 'C') -> <A,*,C>."""

    def make(*names: str) -> AccessPattern:
        return AccessPattern.from_attributes(jas3, names)

    return make


@pytest.fixture
def table2_frequencies(ap3):
    """The Table II worked-example frequency table."""
    return {
        ap3("A"): 0.04,
        ap3("B"): 0.10,
        ap3("C"): 0.10,
        ap3("A", "B"): 0.04,
        ap3("A", "C"): 0.16,
        ap3("B", "C"): 0.10,
        ap3("A", "B", "C"): 0.46,
    }
