"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.1)

    @pytest.mark.parametrize("v", [0, -1, -0.5])
    def test_rejects(self, v):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", v)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckFraction:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_inclusive(self, v):
        check_fraction("f", v)

    @pytest.mark.parametrize("v", [-0.01, 1.01])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_fraction("f", v)

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.0, inclusive_high=False)


class TestCheckType:
    def test_accepts(self):
        check_type("n", 3, int)

    def test_rejects(self):
        with pytest.raises(TypeError, match="n must be int"):
            check_type("n", "3", int)

    def test_tuple_of_types(self):
        check_type("n", 3.0, (int, float))
        with pytest.raises(TypeError):
            check_type("n", "3", (int, float))
