"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_count,
    bits_needed,
    fragment,
    iter_submasks,
    iter_supermasks,
    mask_from_indices,
    mask_to_indices,
    splitmix64,
    stable_value_hash,
)

masks = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_all_ones(self):
        assert bit_count(0b1111) == 4

    @given(masks)
    def test_matches_bin_count(self, m):
        assert bit_count(m) == bin(m).count("1")


class TestBitsNeeded:
    @pytest.mark.parametrize(
        "n,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (256, 8), (257, 9)]
    )
    def test_values(self, n, expected):
        assert bits_needed(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bits_needed(0)

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_bits_suffice(self, n):
        b = bits_needed(n)
        assert 2**b >= n
        if b > 0:
            assert 2 ** (b - 1) < n


class TestMaskConversions:
    def test_round_trip(self):
        assert mask_from_indices(mask_to_indices(0b10110)) == 0b10110

    def test_empty(self):
        assert mask_to_indices(0) == ()
        assert mask_from_indices([]) == 0

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            mask_from_indices([-1])

    def test_rejects_negative_mask(self):
        with pytest.raises(ValueError):
            mask_to_indices(-5)

    @given(masks)
    def test_round_trip_property(self, m):
        assert mask_from_indices(mask_to_indices(m)) == m

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_indices_round_trip(self, idxs):
        assert set(mask_to_indices(mask_from_indices(idxs))) == idxs


class TestSubmasks:
    def test_full_enumeration(self):
        subs = list(iter_submasks(0b101))
        assert subs == [0b101, 0b100, 0b001, 0b000]

    def test_proper_excludes_self(self):
        assert 0b101 not in list(iter_submasks(0b101, proper=True))

    def test_proper_of_zero_is_empty(self):
        assert list(iter_submasks(0, proper=True)) == []

    @given(masks)
    def test_count_is_power_of_two(self, m):
        assert len(list(iter_submasks(m))) == 2 ** bit_count(m)

    @given(masks)
    def test_all_are_submasks(self, m):
        assert all(sub & m == sub for sub in iter_submasks(m))

    @given(masks)
    def test_unique(self, m):
        subs = list(iter_submasks(m))
        assert len(subs) == len(set(subs))


class TestSupermasks:
    def test_within_universe(self):
        sups = set(iter_supermasks(0b001, 0b011))
        assert sups == {0b001, 0b011}

    def test_proper(self):
        assert set(iter_supermasks(0b001, 0b011, proper=True)) == {0b011}

    def test_rejects_mask_outside_universe(self):
        with pytest.raises(ValueError):
            list(iter_supermasks(0b100, 0b011))

    @given(masks, masks)
    def test_supermask_property(self, m, extra):
        universe = m | extra
        for sup in iter_supermasks(m, universe):
            assert sup & m == m
            assert sup & ~universe == 0


class TestHashing:
    def test_splitmix_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_splitmix_64bit(self):
        assert 0 <= splitmix64(2**100) < 2**64

    def test_stable_hash_types(self):
        for v in [0, -7, "abc", b"abc", 3.14, None, True, False]:
            h = stable_value_hash(v)
            assert 0 <= h < 2**64
            assert stable_value_hash(v) == h

    def test_bool_differs_from_int(self):
        assert stable_value_hash(True) != stable_value_hash(1)

    def test_negative_zero_float(self):
        assert stable_value_hash(-0.0) == stable_value_hash(0.0)

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_value_hash([1, 2])

    def test_fragment_zero_bits(self):
        assert fragment("anything", 0) == 0

    def test_fragment_range(self):
        for bits in (1, 3, 8):
            for v in range(50):
                assert 0 <= fragment(v, bits) < 2**bits

    def test_fragment_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            fragment(1, -1)

    @given(st.integers(), st.integers(min_value=1, max_value=16))
    def test_fragment_deterministic(self, v, bits):
        assert fragment(v, bits) == fragment(v, bits)

    def test_fragment_spreads(self):
        # 256 consecutive ints into 16 fragments: no fragment should be empty.
        frags = {fragment(i, 4) for i in range(256)}
        assert frags == set(range(16))


class TestSupermaskCounts:
    @given(masks)
    def test_count_is_power_of_two_of_free_bits(self, m):
        universe = 0b111111111111
        free = bit_count(universe & ~m)
        m &= universe
        assert len(list(iter_supermasks(m, universe))) == 2**free

    @given(masks, masks)
    def test_sub_and_super_are_inverse_relations(self, a, b):
        universe = a | b
        assert (a in set(iter_submasks(b))) == (b in set(iter_supermasks(a, universe)) if (a & b) == a else False)
