"""Tests for repro.utils.rng."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, make_rng


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(42).integers(1000, size=10)
        b = make_rng(42).integers(1000, size=10)
        assert (a == b).all()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "router") == derive_seed(7, "router")

    def test_labels_differ(self):
        assert derive_seed(7, "router") != derive_seed(7, "generator")

    def test_indices_differ(self):
        assert derive_seed(7, "x", 0) != derive_seed(7, "x", 1)

    def test_parents_differ(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_range(self, parent, label):
        s = derive_seed(parent, label)
        assert 0 <= s < 2**63

    def test_decorrelated_streams(self):
        # Child streams from different labels should not produce identical output.
        a = make_rng(derive_seed(0, "a")).integers(1 << 30, size=8)
        b = make_rng(derive_seed(0, "b")).integers(1 << 30, size=8)
        assert not (a == b).all()
