"""Benchmarks for the extension scenarios (beyond the paper's Section V).

- the bursty sensor-network scenario (synthetic stand-in for the tech
  report's real-data experiments): AMRI must survive bursts that kill the
  under-provisioned hash baselines;
- multi-query execution over shared states: one AMRI index per state
  serving two queries' mixed access patterns.
"""

from benchmarks.conftest import run_once
from repro.core.assessment import CDIA
from repro.core.bit_index import make_bit_index
from repro.core.selector import IndexSelector
from repro.core.tuner import AMRITuner
from repro.engine.multi_query import MultiQueryExecutor, QuerySet
from repro.engine.parser import parse_query
from repro.engine.resources import ResourceMeter
from repro.engine.router import GreedyAdaptiveRouter
from repro.engine.stem import SteM
from repro.experiments.harness import run_scheme, train_initial_state
from repro.workloads.generators import ConstantSchedule, SyntheticStreamGenerator
from repro.workloads.scenarios import sensor_network_scenario

SENSOR_TICKS = 300


def test_sensor_scenario_burst_survival(benchmark):
    """AMRI survives the bursts; an under-moduled hash baseline dies."""

    def run():
        scenario = sensor_network_scenario()
        training = train_initial_state(scenario, train_ticks=60)
        amri = run_scheme(scenario, "amri:cdia-highest", SENSOR_TICKS, training=training)
        hash2 = run_scheme(scenario, "hash:2", SENSOR_TICKS, training=training)
        return amri, hash2

    amri, hash2 = run_once(benchmark, run)
    benchmark.extra_info["amri_outputs"] = amri.outputs
    benchmark.extra_info["hash2_outputs"] = hash2.outputs
    benchmark.extra_info["hash2_died_at"] = hash2.died_at
    assert amri.completed
    assert amri.outputs > hash2.outputs


def test_multi_query_shared_state(benchmark):
    """Two queries share stream A's state; one tuned index serves both."""

    def run():
        q1 = parse_query(
            "select A.*, B.* from A, B where A.k = B.k window 12",
            schemas={"A": ["k", "j"]},
            name="q1",
        )
        q2 = parse_query(
            "select A.*, C.* from A, C where A.j = C.j window 12",
            schemas={"A": ["k", "j"]},
            name="q2",
        )
        qs = QuerySet([q1, q2])
        stems = {}
        for stream in qs.stream_names:
            jas = qs.union_jas(stream)
            index = make_bit_index(jas, [6] * len(jas))
            tuner = AMRITuner(
                index,
                CDIA(jas, epsilon=0.05, combine="highest_count", seed=0),
                IndexSelector(jas, 16),
            )
            stems[stream] = SteM(stream, jas, index, qs.max_window(stream), tuner)
        routers = {q.name: GreedyAdaptiveRouter(q, explore_prob=0.1, seed=0) for q in qs}
        executor = MultiQueryExecutor(
            qs,
            stems,
            routers,
            ResourceMeter(capacity=1e12, memory_budget=1 << 30),
            arrival_rates={s: 10.0 for s in qs.stream_names},
        )
        generator = SyntheticStreamGenerator(
            {"A": ("k", "j"), "B": ("k",), "C": ("j",)},
            {"k": ConstantSchedule(64, skew=1.0), "j": ConstantSchedule(64, skew=1.0)},
            {s: 10 for s in ("A", "B", "C")},
            seed=5,
        )
        executor.run(200, generator)
        return executor

    executor = run_once(benchmark, run)
    benchmark.extra_info["per_query_outputs"] = dict(executor.per_query_outputs)
    benchmark.extra_info["migrations"] = executor.stats.migrations
    assert executor.per_query_outputs["q1"] > 0
    assert executor.per_query_outputs["q2"] > 0
    # The shared A-state saw both queries' patterns.
    seen = executor.stems["A"].tuner.assessor.frequencies()
    attrs = {ap.attributes for ap in seen}
    assert ("k",) in attrs and ("j",) in attrs
