"""Ablation: how the total IC bit budget moves AMRI throughput.

The paper fixes 64 bits per state; this ablation sweeps the budget to show
where the headroom stops paying (with 8-bit value domains the useful ceiling
is 24 effective bits per state, so 32 and 64 should coincide — validating
the domain-capping in the cost model).
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.experiments.harness import train_initial_state, run_scheme
from repro.workloads.scenarios import PaperScenario, ScenarioParams

BUDGETS = (4, 8, 16, 64)


@pytest.mark.parametrize("budget", BUDGETS)
def test_bit_budget(benchmark, budget):
    scenario = PaperScenario(ScenarioParams(seed=7, bit_budget=budget))

    def run():
        training = train_initial_state(scenario, train_ticks=60)
        return run_scheme(scenario, "amri:cdia-highest", BENCH_TICKS, training=training)

    stats = run_once(benchmark, run)
    benchmark.extra_info["bit_budget"] = budget
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["died_at"] = stats.died_at
    assert stats.outputs > 0


def test_bit_budget_shape(benchmark):
    """A starved budget must not beat the paper's 64-bit configuration."""

    def sweep():
        out = {}
        for budget in (4, 64):
            scenario = PaperScenario(ScenarioParams(seed=7, bit_budget=budget))
            training = train_initial_state(scenario, train_ticks=60)
            out[budget] = run_scheme(
                scenario, "amri:cdia-highest", BENCH_TICKS, training=training
            )
        return out

    runs = run_once(benchmark, sweep)
    benchmark.extra_info["outputs"] = {b: r.outputs for b, r in runs.items()}
    assert runs[64].outputs >= runs[4].outputs * 0.9
