"""Ablation: CDIA combination strategy (random vs highest-count).

Section IV-D2's intuition for highest-count combination: rolling a child
into the parent with the largest count maximises the chance the combined
mass clears θ at final-results time.  We test that intuition on a workload
engineered to reward it — many small specializations of one moderately
frequent parent — measuring how much workload mass each strategy surfaces.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.assessment import CDIA

JAS4 = JoinAttributeSet(["A", "B", "C", "D"])
THETA = 0.1
N = 5_000


def skewed_lattice_stream(seed=0):
    """60% <A,*,*,*>; the rest spread thinly over A's specializations."""
    rng = np.random.default_rng(seed)
    parent = AccessPattern.from_attributes(JAS4, ["A"])
    specs = [ap for ap in parent.specializations(proper=True)]
    draws = []
    for _ in range(N):
        if rng.random() < 0.6:
            draws.append(parent)
        else:
            draws.append(specs[int(rng.integers(len(specs)))])
    return draws


def surfaced_mass(combine, seed=0):
    cdia = CDIA(JAS4, epsilon=0.02, combine=combine, seed=seed)
    for ap in skewed_lattice_stream(seed=3):
        cdia.record(ap)
    return sum(cdia.frequent_patterns(THETA).values())


def test_combination_strategies(benchmark):
    def run():
        highest = surfaced_mass("highest_count")
        rand = np.mean([surfaced_mass("random", seed=s) for s in range(5)])
        return highest, float(rand)

    highest, rand = run_once(benchmark, run)
    benchmark.extra_info["highest_count_mass"] = round(highest, 3)
    benchmark.extra_info["random_mass_mean5"] = round(rand, 3)
    # Both strategies must surface the dominant parent's mass...
    assert highest >= 0.6
    assert rand >= 0.5
    # ...and concentrating into the heaviest parent can't do worse than
    # scattering (allowing a small tolerance for roll-up path noise).
    assert highest >= rand - 0.05
