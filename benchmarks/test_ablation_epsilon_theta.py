"""Ablation: assessment memory vs statistics quality across ε and θ.

Pure assessment-level sweep (no engine): a drifting, exploration-polluted
pattern stream over a 5-attribute JAS (31 possible patterns, enough for
compaction to matter) is fed to CSRIA and CDIA at several error rates; we
measure peak table size and the fraction of true ≥θ-frequency patterns the
final answer covers.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.access_pattern import JoinAttributeSet
from repro.core.assessment import CDIA, CSRIA, SRIA
from repro.workloads.patterns import (
    PatternStream,
    with_exploration_noise,
    zipf_distribution,
)

JAS5 = JoinAttributeSet(["A", "B", "C", "D", "E"])
N_REQUESTS = 6_000
THETA = 0.1


def workload(seed=0):
    base = zipf_distribution(JAS5, s=1.4, seed=seed)
    noisy = with_exploration_noise(base, JAS5, 0.25)
    drifted = with_exploration_noise(zipf_distribution(JAS5, s=1.4, seed=seed + 99), JAS5, 0.25)
    return PatternStream([(N_REQUESTS // 2, noisy), (N_REQUESTS // 2, drifted)], seed=seed)


def feed_and_measure(assessor):
    peak_entries = 0
    for ap in workload():
        assessor.record(ap)
        peak_entries = max(peak_entries, assessor.entry_count)
    truth = SRIA(JAS5)
    for ap in workload():
        truth.record(ap)
    true_frequent = set(truth.frequent_patterns(THETA))
    found = assessor.frequent_patterns(THETA)
    covered = sum(
        1
        for ap in true_frequent
        if ap in found or any(r.provides_search_benefit_to(ap) for r in found)
    )
    coverage = covered / len(true_frequent) if true_frequent else 1.0
    return peak_entries, coverage


@pytest.mark.parametrize("epsilon", [0.01, 0.05, 0.1])
@pytest.mark.parametrize("method", ["csria", "cdia"])
def test_epsilon_sweep(benchmark, method, epsilon):
    def run():
        assessor = (
            CSRIA(JAS5, epsilon)
            if method == "csria"
            else CDIA(JAS5, epsilon, combine="highest_count", seed=0)
        )
        return feed_and_measure(assessor)

    peak_entries, coverage = run_once(benchmark, run)
    benchmark.extra_info["method"] = method
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["peak_entries"] = peak_entries
    benchmark.extra_info["theta_coverage"] = round(coverage, 3)
    # The heavy-hitter guarantee: everything truly >= theta is covered.
    assert coverage == 1.0


def test_exact_baseline_memory(benchmark):
    """SRIA's table grows with every distinct pattern — the memory pressure
    the compact methods exist to relieve (Section IV-B)."""

    def run():
        sria = SRIA(JAS5)
        for ap in workload():
            sria.record(ap)
        return sria.entry_count

    entries = run_once(benchmark, run)
    benchmark.extra_info["sria_entries"] = entries
    assert entries == 31  # every possible non-full-scan pattern gets a row


def test_compaction_bounds_memory(benchmark):
    """CSRIA's table stays strictly below the full pattern space; CDIA's
    bound is a factor ``h`` (lattice height) weaker — inner nodes survive as
    long as they have live descendants — so it may transiently hold the full
    lattice but must never exceed it."""

    def run():
        cs = CSRIA(JAS5, 0.05)
        cd = CDIA(JAS5, 0.05, combine="highest_count", seed=0)
        cs_peak = cd_peak = 0
        for ap in workload():
            cs.record(ap)
            cd.record(ap)
            cs_peak = max(cs_peak, cs.entry_count)
            cd_peak = max(cd_peak, cd.entry_count)
        return cs_peak, cd_peak

    cs_peak, cd_peak = run_once(benchmark, run)
    benchmark.extra_info["csria_peak"] = cs_peak
    benchmark.extra_info["cdia_peak"] = cd_peak
    assert cs_peak < 31
    assert cd_peak <= 31
