"""Figure 6 (state-of-the-art trials): multi-hash access modules, k = 1..7.

Paper claims: every hash trial exhausted memory before the AMRI run ended
(≤ 12.5 of 20+ minutes); under-indexed trials drown in full-scan backlog,
over-indexed trials in per-tuple maintenance memory.  We regenerate each
trial and assert the aggregate shape: AMRI outlives and out-produces every
trial, and at least the heavily-moduled trials die outright.
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, BENCH_TICKS_LONG, run_once
from repro.experiments.harness import run_scheme

KS = (1, 2, 3, 4, 5, 6, 7)


@pytest.mark.parametrize("k", KS)
def test_fig6_hash_trial(benchmark, bench_scenario, bench_training, k):
    stats = run_once(
        benchmark,
        lambda: run_scheme(bench_scenario, f"hash:{k}", BENCH_TICKS, training=bench_training),
    )
    benchmark.extra_info["k"] = k
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["died_at"] = stats.died_at
    assert stats.probes > 0


def test_fig6_hash_shape(benchmark, bench_scenario, bench_training):
    """AMRI beats every hash trial; the over-indexed trials die of memory."""

    def sweep():
        runs = {
            k: run_scheme(bench_scenario, f"hash:{k}", BENCH_TICKS_LONG, training=bench_training)
            for k in KS
        }
        amri = run_scheme(
            bench_scenario, "amri:cdia-highest", BENCH_TICKS_LONG, training=bench_training
        )
        return runs, amri

    runs, amri = run_once(benchmark, sweep)
    best_k = max(runs, key=lambda k: runs[k].outputs)
    benchmark.extra_info["best_k"] = best_k
    benchmark.extra_info["amri_outputs"] = amri.outputs
    benchmark.extra_info["hash_outputs"] = {k: r.outputs for k, r in runs.items()}
    benchmark.extra_info["hash_deaths"] = {k: r.died_at for k, r in runs.items()}

    assert amri.completed
    for k, r in runs.items():
        assert amri.outputs > r.outputs, f"hash:{k} out-produced AMRI"
    # The paper's claim: *none* of the hash trials survive; over-moduled
    # trials die of per-tuple key memory, under-moduled ones of backlog.
    deaths = [k for k, r in runs.items() if not r.completed]
    assert 7 in deaths
    assert len(deaths) >= 4
