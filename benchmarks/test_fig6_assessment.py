"""Figure 6 (assessment methods): throughput of SRIA/CSRIA/DIA/CDIA tuning.

Paper claims: CDIA-highest outperforms DIA and SRIA by ~19% and CSRIA by
~30%; DIA's and SRIA's results are exactly equal (shared code path, no
compaction).  At benchmark scale we regenerate the per-method runs, record
cumulative throughput as ``extra_info``, and assert the structural facts
that must hold at any scale (every tuner migrates, every run completes,
DIA == SRIA).  The full-scale series is produced by
``python -m repro.experiments.figures fig6``.
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.experiments.harness import run_scheme

SCHEMES = ["amri:sria", "amri:csria", "amri:dia", "amri:cdia-random", "amri:cdia-highest"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig6_assessment_method(benchmark, bench_scenario, bench_training, scheme):
    stats = run_once(
        benchmark,
        lambda: run_scheme(bench_scenario, scheme, BENCH_TICKS, training=bench_training),
    )
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["migrations"] = stats.migrations
    benchmark.extra_info["died_at"] = stats.died_at
    # AMRI must survive and actually adapt, whatever the assessment method.
    assert stats.completed
    assert stats.outputs > 0
    assert stats.migrations > 0


def test_fig6_dia_equals_sria(benchmark, bench_scenario, bench_training):
    """The paper's equality: DIA and SRIA share statistics, hence results."""

    def both():
        sria = run_scheme(bench_scenario, "amri:sria", BENCH_TICKS, training=bench_training)
        dia = run_scheme(bench_scenario, "amri:dia", BENCH_TICKS, training=bench_training)
        return sria, dia

    sria, dia = run_once(benchmark, both)
    assert sria.outputs == dia.outputs
    assert sria.migrations == dia.migrations
    assert [s.outputs for s in sria.samples] == [s.outputs for s in dia.samples]
