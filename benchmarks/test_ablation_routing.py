"""Ablation: routing policy (greedy+ε vs lottery vs content-based vs fixed).

The AMR substrate is not the paper's contribution, but the router drives
the access-pattern mixture AMRI must serve, so routing policy is a design
choice worth quantifying.  All runs use the AMRI index with CDIA-highest
tuning over identical arrivals.
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.engine.router import ContentBasedRouter, FixedRouter, LotteryRouter
from repro.experiments.harness import train_initial_state
from repro.utils.rng import derive_seed
from repro.workloads.scenarios import PaperScenario, ScenarioParams


def run_with_router(router_name: str):
    scenario = PaperScenario(ScenarioParams(seed=7))
    training = train_initial_state(scenario, train_ticks=60)
    executor = scenario.make_executor(
        "amri:cdia-highest", initial_configs=training.configs
    )
    seed = derive_seed(7, "router")
    if router_name == "lottery":
        executor.router = LotteryRouter(scenario.query, seed=seed)
    elif router_name == "content":
        executor.router = ContentBasedRouter(scenario.query, seed=seed)
    elif router_name == "fixed":
        names = scenario.query.stream_names
        executor.router = FixedRouter(
            {s: [t for t in names if t != s] for s in names}
        )
    elif router_name != "greedy":
        raise ValueError(router_name)
    return executor.run(BENCH_TICKS, scenario.make_generator())


@pytest.mark.parametrize("router_name", ["greedy", "lottery", "content", "fixed"])
def test_routing_policy(benchmark, router_name):
    stats = run_once(benchmark, lambda: run_with_router(router_name))
    benchmark.extra_info["router"] = router_name
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["died_at"] = stats.died_at
    assert stats.probes > 0


def test_adaptive_routing_beats_fixed(benchmark):
    """Any adaptive policy should at least match a fixed plan under drift."""

    def compare():
        return run_with_router("greedy"), run_with_router("fixed")

    greedy, fixed = run_once(benchmark, compare)
    benchmark.extra_info["greedy_outputs"] = greedy.outputs
    benchmark.extra_info["fixed_outputs"] = fixed.outputs
    assert greedy.outputs >= fixed.outputs * 0.8
