"""Wall-clock benchmarks of the optimised hot paths.

Runs the same benchmark bodies as ``tools/bench_wall.py`` under
pytest-benchmark, so the suite exercises insert / probe / migrate /
end-to-end timing in CI while the tool owns the committed before/after
evidence (``BENCH_wall.json``).  The non-timing tests pin the properties
the speedups rely on: warm plan caches, slotted hot dataclasses, and a
well-formed committed benchmark file.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_spec = importlib.util.spec_from_file_location(
    "bench_wall", REPO_ROOT / "tools" / "bench_wall.py"
)
bench_wall = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_wall)

from benchmarks.conftest import run_once  # noqa: E402


class TestMicroPaths:
    """pytest-benchmark timings of the micro hot paths (many rounds)."""

    def test_bit_index_insert(self, benchmark):
        assert benchmark(bench_wall.bench_bit_index_insert) == bench_wall.N_ITEMS

    def test_bit_index_probe(self, benchmark):
        idx = bench_wall.populated_bit_index()
        assert benchmark(bench_wall.bench_bit_index_probe, idx) == bench_wall.N_PROBES

    def test_multi_hash_probe(self, benchmark):
        idx = bench_wall.populated_hash_index()
        assert benchmark(bench_wall.bench_multi_hash_probe, idx) == bench_wall.N_PROBES

    def test_bit_index_migrate(self, benchmark):
        assert run_once(benchmark, bench_wall.bench_bit_index_migrate) == 10

    def test_probe_plane_serial(self, benchmark):
        idx = bench_wall.populated_bit_index()
        assert benchmark(bench_wall.bench_probe_plane_serial, idx) == bench_wall.N_PROBES

    def test_probe_plane_batch64(self, benchmark):
        idx = bench_wall.populated_bit_index()
        assert (
            benchmark(bench_wall.bench_probe_plane_batch64, idx) == bench_wall.N_PROBES
        )

    def test_latency_p95(self, benchmark):
        assert run_once(benchmark, bench_wall.bench_latency_p95) == 50_000

    def test_fleet_router(self, benchmark):
        fixture = bench_wall.fleet_router_fixture()
        assert benchmark(bench_wall.bench_fleet_router, fixture) == bench_wall.N_PROBES

    def test_probe_sparse_eager(self, benchmark):
        assert (
            benchmark(bench_wall.bench_probe_sparse_eager)
            == bench_wall.SPARSE_STREAM_N
        )

    def test_probe_sparse_lazy(self, benchmark):
        assert (
            benchmark(bench_wall.bench_probe_sparse_lazy)
            == bench_wall.SPARSE_STREAM_N
        )

    def test_probe_parallel_serial(self, benchmark):
        fixture = bench_wall.probe_parallel_fixture()
        assert (
            benchmark(bench_wall.bench_probe_parallel_serial, fixture)
            == bench_wall.N_PROBES
        )

    def test_probe_parallel_pool4(self, benchmark):
        fixture = bench_wall.probe_parallel_fixture()
        assert (
            run_once(benchmark, bench_wall.bench_probe_parallel_pool4, fixture)
            == bench_wall.N_PROBES
        )


class TestEndToEnd:
    """Experiment-scale runs: timed once, like the figure benchmarks."""

    def test_end_to_end_scenario(self, benchmark):
        assert run_once(benchmark, bench_wall.bench_end_to_end_scenario) == 60

    def test_parallel_training_shared(self, benchmark):
        from repro.experiments.harness import clear_training_cache

        clear_training_cache()
        assert run_once(benchmark, bench_wall.bench_parallel_training_shared) == 3


class TestSpeedupProperties:
    """The structural facts behind the wall-clock wins."""

    def test_probe_workload_warms_one_plan_per_pattern(self):
        idx = bench_wall.populated_bit_index()
        bench_wall.bench_bit_index_probe(idx)
        # Three distinct patterns in the workload -> three cached plans.
        assert len(idx.probe_plans) == 3

    def test_hot_dataclasses_are_slotted(self):
        from repro.core.bit_index import MigrationReport
        from repro.engine.kernel.stages import TickState
        from repro.engine.tracing import EngineEvent
        from repro.indexes.base import SearchOutcome

        for cls in (SearchOutcome, EngineEvent, MigrationReport, TickState):
            assert "__slots__" in vars(cls), cls.__name__
            # slots-only classes carry no per-instance __dict__ at all
            assert cls.__dictoffset__ == 0, cls.__name__

    def test_batch_probe_plane_is_bit_identical_on_the_bench_workload(self):
        """The timed comparison is fair: batch64 does the same logical work
        (same outcomes, same accountant) as the serial probe plane."""
        ap, rows = bench_wall.zipf_probe_workload(320)
        serial_idx = bench_wall.populated_bit_index()
        serial = [serial_idx.search(ap, values) for values in rows]
        batch_idx = bench_wall.populated_bit_index()
        batched = []
        for start in range(0, len(rows), bench_wall.BATCH_SIZE):
            batched.extend(
                batch_idx.search_batch(ap, rows[start : start + bench_wall.BATCH_SIZE])
            )
        for a, b in zip(serial, batched):
            assert b.matches == a.matches
            assert b.tuples_examined == a.tuples_examined
            assert b.buckets_visited == a.buckets_visited
        assert batch_idx.accountant == serial_idx.accountant

    def test_zipf_workload_is_skewed_enough_to_dedup(self):
        """The batch win comes from row dedup: a 64-row chunk of the skewed
        workload repeats most of its rows."""
        _, rows = bench_wall.zipf_probe_workload()
        size = bench_wall.BATCH_SIZE
        chunks = [rows[i : i + size] for i in range(0, len(rows) - size + 1, size)]
        distinct = [
            len({tuple(sorted(r.items())) for r in chunk}) for chunk in chunks
        ]
        assert sum(distinct) / len(distinct) < size / 2

    def test_lazy_sparse_stream_is_bit_identical_to_eager(self):
        """The timed comparison is fair: the lazy admission tier does the
        same logical work on the bench workload — identical probe outcomes
        (matches, charges) and an identical accountant at the end, the
        exact-merge contract the differential suite pins engine-wide."""
        from repro.indexes.inverted_index import InvertedListIndex

        items, ap = bench_wall.sparse_stream_workload()
        items = items[:1_200]
        eager_idx = InvertedListIndex(bench_wall.JAS)
        lazy_idx = InvertedListIndex(bench_wall.JAS)
        lazy_idx.enable_lazy()
        for i, item in enumerate(items):
            for idx in (eager_idx, lazy_idx):
                idx.insert(item)
                if i >= bench_wall.SPARSE_WINDOW:
                    idx.remove(items[i - bench_wall.SPARSE_WINDOW])
            if i % bench_wall.SPARSE_PROBE_EVERY == bench_wall.SPARSE_PROBE_EVERY - 1:
                a = eager_idx.search(ap, item)
                b = lazy_idx.search(ap, item)
                assert b.matches == a.matches
                assert b.tuples_examined == a.tuples_examined
                assert b.buckets_visited == a.buckets_visited
        assert lazy_idx.pending_count > 0  # the lazy run really was lazy
        assert lazy_idx.accountant == eager_idx.accountant

    def test_parallel_probe_plane_is_bit_identical_on_the_bench_workload(self):
        """The timed comparison is fair: the 4-thread pool produces the
        same per-row outcomes and, after absorbing every scratch
        accountant, the same live accountant as the inline serial path."""
        from concurrent.futures import ThreadPoolExecutor

        store, ap, chunks = bench_wall.probe_parallel_fixture()
        chunks = chunks[:8]
        snapshot = store.snapshot()
        serial = [snapshot.probe_chunk(ap, chunk) for chunk in chunks]
        twin, ap2, _ = bench_wall.probe_parallel_fixture()
        twin_snapshot = twin.snapshot()
        with ThreadPoolExecutor(max_workers=bench_wall.PROBE_WORKERS) as pool:
            futures = [
                pool.submit(twin_snapshot.probe_chunk, ap2, chunk) for chunk in chunks
            ]
            pooled = [future.result() for future in futures]
        def payloads(outcome):
            return [tuple(sorted(m.items())) for m in outcome.matches]

        for s, p in zip(serial, pooled):
            for a, b in zip(s.outcomes, p.outcomes):
                assert payloads(b) == payloads(a)
                assert b.tuples_examined == a.tuples_examined
                assert b.buckets_visited == a.buckets_visited
            snapshot.absorb(s)
            twin_snapshot.absorb(p)
        assert twin.index.accountant == store.index.accountant

    def test_probe_parallel_schedule_exposes_real_parallelism(self):
        """The committed makespan ratio is recomputable arithmetic over
        measured chunk work, and the Zipf chunks are balanced enough that
        4 workers clear the 1.5x acceptance bar with margin."""
        costs = bench_wall.probe_parallel_cost_units()
        assert costs["workers"] == 4
        assert costs["chunks"] > bench_wall.PROBE_WORKERS
        assert costs["serial"] / costs["critical_path"] >= 1.5

    def test_sparse_workload_is_probe_sparse(self):
        """The crack win comes from skipped posting maintenance: probes are
        rare relative to window churn, so eager admission is mostly waste."""
        probes = bench_wall.SPARSE_STREAM_N // bench_wall.SPARSE_PROBE_EVERY
        assert probes * 25 < bench_wall.SPARSE_STREAM_N

    def test_fleet_routing_splits_across_replicas(self):
        """The fleet win comes from complementarity: the benchmark's probe
        mix is not won wholesale by one replica — different patterns argmin
        to different divergent configurations."""
        indexes, stats, patterns = bench_wall.fleet_router_fixture()
        winners = set()
        for ap in patterns:
            costs = [bench_wall.score_index(idx, ap, stats) for idx in indexes]
            winners.add(min(range(len(costs)), key=lambda j: (costs[j], j)))
        assert len(winners) > 1

    def test_fleet_costs_match_the_committed_selector_output(self):
        """``fleet_cost_units`` is reproducible selector arithmetic, not a
        machine artefact: recomputing it gives the committed numbers."""
        costs = bench_wall.fleet_modeled_costs()
        assert costs["divergent"] > 0
        assert costs["single"] > costs["divergent"]

    def test_footprint_measurement_covers_the_slotted_classes(self):
        footprint = bench_wall.measure_footprint()
        assert set(footprint) == {
            "SearchOutcome",
            "EngineEvent",
            "MigrationReport",
            "TickState",
        }
        assert all(bytes_per > 0 for bytes_per in footprint.values())


class TestCommittedEvidence:
    """BENCH_wall.json is part of the repo's performance record."""

    def doc(self):
        return json.loads((REPO_ROOT / "BENCH_wall.json").read_text())

    def test_schema_and_labels(self):
        doc = self.doc()
        assert doc["schema"] == "bench-wall/v1"
        assert {"before", "after"} <= set(doc["runs"])
        for run in doc["runs"].values():
            assert set(run["benchmarks"]) == set(bench_wall.BENCHMARKS)

    def test_cross_label_speedups_show_no_regression(self):
        """Both labels are now full same-machine, same-code runs (the
        parallel probe plane refresh), so the cross-label ``speedup``
        section is a no-regression gate rather than optimisation evidence:
        ``after`` must stay within noise of ``before`` on the acceptance
        paths.  The original hot-path optimisation evidence (probe 2.36x,
        end-to-end 2.19x against the pre-optimisation code) is recorded in
        the history of this file; today's acceptance ratios are the
        within-run sections asserted below, which hold machine and code
        fixed by construction."""
        speedup = self.doc()["speedup"]
        assert speedup["bit_index_probe"] >= 0.7
        assert speedup["end_to_end_scenario"] >= 0.7

    def test_batch_plane_speedup_recorded(self):
        """The batch data plane's acceptance evidence: >=1.5x probe-stage
        throughput at batch size 64 vs serial, measured within one run."""
        batch_speedup = self.doc()["batch_speedup"]
        assert batch_speedup["after"] >= 1.5
        assert batch_speedup["before"] >= 1.5

    def test_crack_speedup_recorded(self):
        """The lazy indexing refactor's acceptance evidence: >=1.3x on the
        probe-sparse sliding-window stream vs eager admission, measured
        within one run for both committed labels."""
        crack_speedup = self.doc()["crack_speedup"]
        assert crack_speedup["after"] >= 1.3
        assert crack_speedup["before"] >= 1.3

    def test_fleet_speedup_recorded(self):
        """The divergent fleet's acceptance evidence: the complementary
        K=3 configuration set beats 3 copies of the single best one by
        >=1.2x in modeled cost units, for both committed labels."""
        fleet_speedup = self.doc()["fleet_speedup"]
        assert fleet_speedup["after"] >= 1.2
        assert fleet_speedup["before"] >= 1.2

    def test_probe_parallel_speedup_recorded(self):
        """The parallel probe plane's acceptance evidence: >=1.5x at 4
        workers on the Zipf probe plane — measured chunk work over the
        pool schedule's critical path, for both committed labels (the raw
        wall seconds of both paths sit in the benchmarks section)."""
        doc = self.doc()
        probe_parallel_speedup = doc["probe_parallel_speedup"]
        assert probe_parallel_speedup["after"] >= 1.5
        assert probe_parallel_speedup["before"] >= 1.5
        for run in doc["runs"].values():
            costs = run["probe_parallel_cost_units"]
            assert costs["workers"] == 4
            assert costs["serial"] > costs["critical_path"] > 0
