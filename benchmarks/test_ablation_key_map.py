"""Ablation: value-to-fragment mapping strategy (Section III's key-map note).

The paper assumes the key map is chosen so buckets fill evenly and calls
the choice "a generic hashing issue".  This ablation quantifies it on the
scenario's Zipf-skewed values: hash fragmentation vs an equi-depth mapper
trained on a sample, measured by bucket-occupancy skew and by the tuples a
single-attribute probe examines.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.bit_index import BitAddressIndex
from repro.core.index_config import IndexConfiguration
from repro.core.value_mapping import EquiDepthValueMapper, occupancy_skew
from repro.workloads.generators import zipf_weights

JAS = JoinAttributeSet(["A", "B", "C"])
DOMAIN, SKEW, BITS, N = 4096, 0.9, 6, 5_000


def build_items(seed=0):
    rng = np.random.default_rng(seed)
    w = zipf_weights(DOMAIN, SKEW)
    cols = {a: rng.choice(DOMAIN, size=N, p=w) for a in JAS.names}
    return [{a: int(cols[a][i]) for a in JAS.names} for i in range(N)]


def test_key_map_strategies(benchmark):
    def run():
        items = build_items()
        cfg = IndexConfiguration(JAS, {"A": BITS})
        hashed = BitAddressIndex(cfg)
        trained = EquiDepthValueMapper({"A": [i["A"] for i in build_items(seed=99)]})
        depth = BitAddressIndex(cfg, value_mapper=trained)
        for item in items:
            hashed.insert(item)
            depth.insert(item)
        ap = AccessPattern.from_attributes(JAS, ["A"])
        rng = np.random.default_rng(1)
        w = zipf_weights(DOMAIN, SKEW)
        probes = rng.choice(DOMAIN, size=300, p=w)
        examined = {"hash": 0, "equidepth": 0}
        for v in probes:
            examined["hash"] += hashed.search(ap, {"A": int(v)}).tuples_examined
            examined["equidepth"] += depth.search(ap, {"A": int(v)}).tuples_examined
        return (
            occupancy_skew(hashed.bucket_sizes()),
            occupancy_skew(depth.bucket_sizes()),
            examined,
        )

    hash_skew, depth_skew, examined = run_once(benchmark, run)
    benchmark.extra_info["hash_occupancy_skew"] = round(hash_skew, 2)
    benchmark.extra_info["equidepth_occupancy_skew"] = round(depth_skew, 2)
    benchmark.extra_info["tuples_examined"] = examined
    # Equi-depth must flatten occupancy; probe work should not regress.
    assert depth_skew < hash_skew
    assert examined["equidepth"] <= examined["hash"] * 1.1
