"""Micro-benchmarks: wall-clock cost of the primitive index operations.

These are true pytest-benchmark timings (many rounds) of the hot paths —
insert, probe by access-pattern width, migration, assessment recording —
for each index scheme.  They back the paper's qualitative maintenance-cost
claims at the Python level and guard against performance regressions.

Besides wall-clock stats, each index benchmark records the operation's
**virtual-clock cost units** as ``extra_info["cost_units"]`` in the
``--benchmark-json`` export.  Cost units are deterministic (they count
model operations, not time), so CI can compare them against the committed
``BENCH_micro.json`` within a tight tolerance without the noise that makes
wall-clock gating flaky — see ``tools/check_bench_regression.py``.
"""

import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.assessment import CDIA, CSRIA, SRIA
from repro.core.bit_index import make_bit_index
from repro.core.cost_model import WorkloadStatistics
from repro.core.index_config import IndexConfiguration
from repro.core.selector import select_exhaustive
from repro.indexes.base import CostParams
from repro.indexes.hash_index import MultiHashIndex
from repro.indexes.scan_index import ScanIndex

JAS = JoinAttributeSet(["A", "B", "C"])
N_ITEMS = 2_000
COST_PARAMS = CostParams()


def make_items(n=N_ITEMS):
    return [{"A": i % 251, "B": (i * 7) % 239, "C": (i * 13) % 241} for i in range(n)]


def fresh_bit_index():
    return make_bit_index(JAS, {"A": 8, "B": 8, "C": 8})


def fresh_hash_index(k=3):
    patterns = [
        AccessPattern.from_attributes(JAS, ["A"]),
        AccessPattern.from_attributes(JAS, ["A", "B"]),
        AccessPattern.from_attributes(JAS, ["B", "C"]),
    ][:k]
    return MultiHashIndex(JAS, patterns)


def record_cost_units(benchmark, fn):
    """Attach the operation's deterministic cost units to the JSON export.

    ``fn`` replays the benchmarked operation once on *fresh* state and
    returns the accountant cost it accrued — independent of how many
    timing rounds ran, so the recorded value is exactly reproducible.
    """
    benchmark.extra_info["cost_units"] = round(fn(), 6)


def probe_cost(idx, ap, values):
    """Marginal cost units of one extra probe (search state is unchanged)."""
    before = idx.accountant.snapshot()
    idx.search(ap, values)
    return idx.accountant.cost_since(before, COST_PARAMS)


# --------------------------------------------------------------------- #
# maintenance


def test_bit_index_insert(benchmark):
    items = make_items()

    def build():
        idx = fresh_bit_index()
        for item in items:
            idx.insert(item)
        return idx

    idx = benchmark(build)
    assert idx.size == N_ITEMS
    record_cost_units(benchmark, lambda: build().accountant.cost(COST_PARAMS))


def test_multi_hash_insert(benchmark):
    items = make_items()

    def build():
        idx = fresh_hash_index()
        for item in items:
            idx.insert(item)
        return idx

    idx = benchmark(build)
    assert idx.size == N_ITEMS
    record_cost_units(benchmark, lambda: build().accountant.cost(COST_PARAMS))


def test_bit_index_expiry(benchmark):
    items = make_items()

    def cycle():
        idx = fresh_bit_index()
        for item in items:
            idx.insert(item)
        for item in items:
            idx.remove(item)
        return idx

    idx = benchmark(cycle)
    assert idx.size == 0 and idx.memory_bytes == 0
    record_cost_units(benchmark, lambda: cycle().accountant.cost(COST_PARAMS))


# --------------------------------------------------------------------- #
# search, by access-pattern width


@pytest.mark.parametrize("n_attrs", [1, 2, 3])
def test_bit_index_probe(benchmark, n_attrs):
    idx = fresh_bit_index()
    for item in make_items():
        idx.insert(item)
    ap = AccessPattern.from_attributes(JAS, ["A", "B", "C"][:n_attrs])
    values = {"A": 5, "B": 7, "C": 13}

    out = benchmark(lambda: idx.search(ap, values))
    assert out.tuples_examined <= idx.size
    record_cost_units(benchmark, lambda: probe_cost(idx, ap, values))


@pytest.mark.parametrize("n_attrs", [1, 2, 3])
def test_multi_hash_probe(benchmark, n_attrs):
    idx = fresh_hash_index()
    for item in make_items():
        idx.insert(item)
    ap = AccessPattern.from_attributes(JAS, ["A", "B", "C"][:n_attrs])
    values = {"A": 5, "B": 7, "C": 13}

    out = benchmark(lambda: idx.search(ap, values))
    assert out.tuples_examined <= idx.size
    record_cost_units(benchmark, lambda: probe_cost(idx, ap, values))


def test_scan_probe(benchmark):
    idx = ScanIndex(JAS)
    for item in make_items():
        idx.insert(item)
    ap = AccessPattern.from_attributes(JAS, ["A"])

    out = benchmark(lambda: idx.search(ap, {"A": 5}))
    assert out.tuples_examined == idx.size
    record_cost_units(benchmark, lambda: probe_cost(idx, ap, {"A": 5}))


# --------------------------------------------------------------------- #
# adaptation


def test_bit_index_migration(benchmark):
    items = make_items()
    target_a = IndexConfiguration(JAS, {"A": 10, "B": 3})
    target_b = IndexConfiguration(JAS, {"B": 8, "C": 8})

    idx = fresh_bit_index()
    for item in items:
        idx.insert(item)
    state = {"flip": False}

    def migrate():
        state["flip"] = not state["flip"]
        return idx.reconfigure(target_a if state["flip"] else target_b)

    report = benchmark(migrate)
    assert report.tuples_moved == N_ITEMS

    def one_migration():
        fresh = fresh_bit_index()
        for item in items:
            fresh.insert(item)
        before = fresh.accountant.snapshot()
        fresh.reconfigure(target_a)
        return fresh.accountant.cost_since(before, COST_PARAMS)

    record_cost_units(benchmark, one_migration)


def test_multi_hash_retune(benchmark):
    idx = fresh_hash_index()
    for item in make_items():
        idx.insert(item)
    set_a = [AccessPattern.from_attributes(JAS, ["C"])]
    set_b = [AccessPattern.from_attributes(JAS, ["A", "C"])]
    state = {"flip": False}

    def retune():
        state["flip"] = not state["flip"]
        idx.set_patterns(set_a if state["flip"] else set_b)

    benchmark(retune)
    assert idx.module_count == 1

    def one_retune():
        fresh = fresh_hash_index()
        for item in make_items():
            fresh.insert(item)
        before = fresh.accountant.snapshot()
        fresh.set_patterns(set_a)
        return fresh.accountant.cost_since(before, COST_PARAMS)

    record_cost_units(benchmark, one_retune)


# --------------------------------------------------------------------- #
# assessment

PATTERN_CYCLE = [AccessPattern.from_mask(JAS, 1 + (i % 7)) for i in range(1000)]


@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(lambda: SRIA(JAS), id="sria"),
        pytest.param(lambda: CSRIA(JAS, 0.05), id="csria"),
        pytest.param(lambda: CDIA(JAS, 0.05, combine="highest_count"), id="cdia-highest"),
        pytest.param(lambda: CDIA(JAS, 0.05, combine="random"), id="cdia-random"),
    ],
)
def test_assessor_record_throughput(benchmark, factory):
    def record_all():
        assessor = factory()
        for ap in PATTERN_CYCLE:
            assessor.record(ap)
        return assessor

    assessor = benchmark(record_all)
    assert assessor.n_requests == len(PATTERN_CYCLE)


def test_selector_exhaustive_64bit(benchmark):
    """Full enumeration at the paper's 64-bit budget (domain-capped)."""
    ap = AccessPattern.from_attributes
    stats = WorkloadStatistics(
        lambda_d=100,
        lambda_r=100,
        window=20,
        frequencies={
            ap(JAS, ["A"]): 0.3,
            ap(JAS, ["A", "B"]): 0.3,
            ap(JAS, ["B", "C"]): 0.4,
        },
        domain_bits={"A": 8, "B": 8, "C": 8},
    )
    best = benchmark(lambda: select_exhaustive(stats, JAS, 64))
    assert best.total_bits <= 64
