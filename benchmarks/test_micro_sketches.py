"""Micro-benchmarks: the heavy-hitter sketch substrate.

Wall-clock throughput of offer() on each summary, plus compression and
final-results costs — the per-request assessment overhead the paper's
Section I-B frets about ("the overhead of assessing indices clearly must
not detract from producing rapid results").
"""

import numpy as np
import pytest

from repro.core.access_pattern import AccessPattern, JoinAttributeSet
from repro.core.assessment import CDIA, CSRIA
from repro.sketches.hierarchical import HierarchicalHeavyHitters
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving
from repro.utils.bitops import bit_count, mask_to_indices

N_ITEMS = 20_000
rng = np.random.default_rng(3)
ZIPF_STREAM = [int(v) for v in rng.choice(64, size=N_ITEMS, p=(lambda w: w / w.sum())(
    np.arange(1, 65, dtype=float) ** -1.2
))]


def test_misra_gries_offer(benchmark):
    def run():
        mg = MisraGries(k=20)
        mg.extend(ZIPF_STREAM)
        return mg

    mg = benchmark(run)
    assert mg.n == N_ITEMS


def test_lossy_counting_offer(benchmark):
    def run():
        lc = LossyCounting(0.01)
        lc.extend(ZIPF_STREAM)
        return lc

    lc = benchmark(run)
    assert lc.n == N_ITEMS


def test_space_saving_offer(benchmark):
    def run():
        ss = SpaceSaving(capacity=32)
        ss.extend(ZIPF_STREAM)
        return ss

    ss = benchmark(run)
    assert ss.n == N_ITEMS


def test_hierarchical_offer(benchmark):
    masks = [int(v) % 15 for v in ZIPF_STREAM]

    def run():
        h = HierarchicalHeavyHitters(
            0.02,
            parents=lambda m: tuple(m & ~(1 << i) for i in mask_to_indices(m)),
            level=bit_count,
            is_ancestor=lambda a, b: a != b and (a & b) == a,
            seed=0,
        )
        h.extend(masks)
        return h

    h = benchmark(run)
    assert h.n == N_ITEMS


@pytest.mark.parametrize("n_attrs", [3, 5])
def test_assessment_final_results(benchmark, n_attrs):
    """frequent_patterns() — the per-tuning-round read cost."""
    jas = JoinAttributeSet([f"a{i}" for i in range(n_attrs)])
    patterns = [AccessPattern.from_mask(jas, 1 + (m % jas.full_mask)) for m in ZIPF_STREAM[:5000]]
    cdia = CDIA(jas, 0.02, combine="highest_count", seed=0)
    csria = CSRIA(jas, 0.02)
    for ap in patterns:
        cdia.record(ap)
        csria.record(ap)

    out = benchmark(lambda: (cdia.frequent_patterns(0.1), csria.frequent_patterns(0.1)))
    assert out[0] and out[1]
