"""Figure 7 (AMRI vs non-adapting bitmap index).

Paper claim: starting from the same (trained) optimal configuration, the
non-adapting bit-address index cannot keep up once drift moves the
access-pattern mix — it died at 15.5 minutes and AMRI produced ~75% more
results.  We regenerate the comparison: identical starting ICs, tuning on
vs off, identical arrivals.
"""

from benchmarks.conftest import BENCH_TICKS_LONG, run_once
from repro.experiments.harness import run_scheme
from repro.experiments.reporting import improvement_pct


def test_fig7_amri_vs_static_bitmap(benchmark, bench_scenario, bench_training):
    def compare():
        amri = run_scheme(
            bench_scenario, "amri:cdia-highest", BENCH_TICKS_LONG, training=bench_training
        )
        static = run_scheme(bench_scenario, "static", BENCH_TICKS_LONG, training=bench_training)
        return amri, static

    amri, static = run_once(benchmark, compare)
    pct = improvement_pct(amri.outputs, static.outputs)
    benchmark.extra_info["amri_outputs"] = amri.outputs
    benchmark.extra_info["static_outputs"] = static.outputs
    benchmark.extra_info["static_died_at"] = static.died_at
    benchmark.extra_info["improvement_pct"] = round(pct, 1)
    benchmark.extra_info["paper_improvement_pct"] = 75.0

    assert amri.completed
    assert amri.migrations > 0 and static.migrations == 0
    assert pct > 20.0, f"AMRI only {pct:.0f}% ahead of static bitmap (paper: ~75%)"
