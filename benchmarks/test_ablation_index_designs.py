"""Ablation: index design space — AMRI vs inverted lists vs hash vs scan.

Beyond the paper's comparisons, the per-attribute inverted-list index is
the natural third design: exact, serves every pattern, but pays one posting
per tuple per attribute and cannot be tuned.  This ablation runs all four
designs over identical arrivals at the default calibration (where memory is
the binding constraint) and with unlimited memory (where only CPU matters),
showing *why* the paper's tunable single-structure design wins: it is not
the fastest probe, it is the cheapest to keep alive.
"""

from benchmarks.conftest import BENCH_TICKS_LONG, run_once
from repro.experiments.harness import run_scheme

SCHEMES = ("amri:cdia-highest", "inverted", "hash:4", "scan")


def test_index_design_space(benchmark, bench_scenario, bench_training):
    def sweep():
        constrained = {
            s: run_scheme(bench_scenario, s, BENCH_TICKS_LONG, training=bench_training)
            for s in SCHEMES
        }
        unconstrained = {
            s: run_scheme(
                bench_scenario,
                s,
                120,
                training=bench_training,
                capacity=1e12,
                memory_budget=1 << 40,
            )
            for s in SCHEMES
        }
        return constrained, unconstrained

    constrained, unconstrained = run_once(benchmark, sweep)
    benchmark.extra_info["constrained_outputs"] = {
        s: r.outputs for s, r in constrained.items()
    }
    benchmark.extra_info["deaths"] = {s: r.died_at for s, r in constrained.items()}

    # Unlimited resources: every design computes the same join.
    assert len({r.outputs for r in unconstrained.values()}) == 1
    # Under the paper's resource pressure, AMRI survives and wins.
    amri = constrained["amri:cdia-highest"]
    assert amri.completed
    for s in ("hash:4", "scan"):
        assert amri.outputs > constrained[s].outputs, s
    # The inverted index is the strongest challenger (exact, all-pattern):
    # it must at least beat the hash modules — and whether it survives the
    # memory budget is exactly what the ablation reports.
    benchmark.extra_info["inverted_survived"] = constrained["inverted"].completed
