"""Shared fixtures for the benchmark suite.

Figure-level benchmarks regenerate the paper's experiments at a reduced
scale (fewer ticks than the figure harness in
``repro.experiments.figures``, which remains the reference for full-scale
regeneration).  Runs are seeded and the quasi-training pass is shared per
session so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import TrainingResult, train_initial_state
from repro.workloads.scenarios import PaperScenario, ScenarioParams

BENCH_SEED = 7
BENCH_TICKS = 150
# The headline comparisons need the horizon past the best baseline's death
# (~tick 200 at default calibration); shorter runs catch the baseline in its
# early lead, exactly as in the paper's Figure 7.
BENCH_TICKS_LONG = 400
BENCH_TRAIN_TICKS = 60


@pytest.fixture(scope="session")
def bench_scenario() -> PaperScenario:
    """The Section V scenario at its default calibration."""
    return PaperScenario(ScenarioParams(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_training(bench_scenario) -> TrainingResult:
    """One quasi-training pass shared by every figure benchmark."""
    return train_initial_state(bench_scenario, train_ticks=BENCH_TRAIN_TICKS)


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure regenerations are deterministic experiment runs, not
    micro-kernels; re-running them for statistical rounds would only
    waste suite time.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
