"""Table II — the CSRIA vs CDIA worked example (Sections IV-C2 / IV-D2).

Paper claims, verified exactly here:

- with θ=5% and ε=0.1%, CSRIA deletes ``<A,*,*>`` and ``<A,B,*>`` (4% each)
  and its surviving statistics select the IC {B:1, C:3};
- the true optimal 4-bit IC for the full statistics is {A:1, B:1, C:2};
- CDIA combines the deleted mass upward instead, retaining more of the
  workload for selection.
"""

from benchmarks.conftest import run_once
from repro.core.index_config import IndexConfiguration
from repro.experiments.figures import table2


def test_table2_worked_example(benchmark):
    result = run_once(benchmark, table2)
    jas = result["ic_true"].jas

    assert result["ic_true"] == IndexConfiguration(jas, {"A": 1, "B": 1, "C": 2})
    assert result["ic_csria"] == IndexConfiguration(jas, {"B": 1, "C": 3})

    # CSRIA deleted the 4% patterns; CDIA retained (strictly more of) their mass.
    csria_mass = sum(result["csria_frequencies"].values())
    cdia_mass = sum(result["cdia_frequencies"].values())
    benchmark.extra_info["csria_mass"] = round(csria_mass, 3)
    benchmark.extra_info["cdia_mass"] = round(cdia_mass, 3)
    benchmark.extra_info["ic_true"] = repr(result["ic_true"])
    benchmark.extra_info["ic_csria"] = repr(result["ic_csria"])
    benchmark.extra_info["ic_cdia"] = repr(result["ic_cdia"])
    assert csria_mass < 0.95  # the two 4% patterns are gone
    assert cdia_mass > csria_mass
