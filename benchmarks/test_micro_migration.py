"""Micro-benchmarks: stop-the-world vs budgeted index migration.

The storage layer's :class:`~repro.storage.migration.IndexLifecycle` can
pay for an index reconfiguration two ways: relocate the whole state inside
one tick (``migration_budget=None``, the legacy behaviour) or drain it
incrementally at ``budget`` tuples per tick through a dual-structure
phase.  These benchmarks time both paths over the same 2 000-tuple state
and record, per variant:

- ``extra_info["cost_units"]`` — total virtual-clock cost of the whole
  migration, deterministic and gated by
  ``tools/check_bench_regression.py``.  The budget re-times the work
  rather than discounting it, so both variants record the *same* total.
- ``extra_info["peak_index_bytes"]`` — the highest ``index_bytes`` gauge
  reading during the migration.  Only the budgeted drain holds two
  structures at once, so its peak is strictly higher: that surplus is the
  memory price of bounding the per-tick cost spike.
"""

from repro.core.access_pattern import JoinAttributeSet
from repro.core.bit_index import make_bit_index
from repro.core.index_config import IndexConfiguration
from repro.engine.tuples import StreamTuple
from repro.indexes.base import CostParams
from repro.storage import StateStore

JAS = JoinAttributeSet(["A", "B", "C"])
N_ITEMS = 2_000
BUDGET = 250  # tuples per tick -> an 8-step drain over N_ITEMS
COST_PARAMS = CostParams()
# Equal-footprint configurations: per-tuple entry bytes match on both
# sides, so the only byte difference mid-drain is the duplicated bucket
# scaffolding — exactly the dual-structure surplus the gauge must expose.
TARGET_A = IndexConfiguration(JAS, {"B": 8, "C": 8})
TARGET_B = IndexConfiguration(JAS, {"A": 8, "B": 8})


def make_tuples(n=N_ITEMS):
    return [
        StreamTuple("S", i, {"A": i % 251, "B": (i * 7) % 239, "C": (i * 13) % 241})
        for i in range(n)
    ]


def fresh_store(budget=None):
    store = StateStore(
        "S",
        JAS,
        make_bit_index(JAS, {"A": 8, "B": 8}),
        window=10**9,  # nothing expires during the benchmark
        migration_budget=budget,
    )
    for item in make_tuples():
        store.insert(item, item.arrived_at)
    return store


def replay_migration(budget):
    """One full migration on fresh state: (cost units, peak index bytes).

    Replayed outside the timing loop so the recorded values are exactly
    reproducible regardless of how many rounds the timer ran.
    """
    store = fresh_store(budget)
    acct = store.index.accountant
    before = acct.snapshot()
    peak = acct.index_bytes
    store.lifecycle.begin(TARGET_A)
    peak = max(peak, acct.index_bytes)
    while store.lifecycle.active:
        store.lifecycle.step()
        peak = max(peak, acct.index_bytes)
    return acct.cost_since(before, COST_PARAMS), peak


def record_migration_info(benchmark, budget):
    cost, peak = replay_migration(budget)
    benchmark.extra_info["cost_units"] = round(cost, 6)
    benchmark.extra_info["peak_index_bytes"] = peak


def test_migration_stop_the_world(benchmark):
    store = fresh_store(budget=None)
    state = {"flip": False}

    def migrate():
        state["flip"] = not state["flip"]
        return store.lifecycle.begin(TARGET_A if state["flip"] else TARGET_B)

    report = benchmark(migrate)
    assert report.tuples_moved == N_ITEMS
    record_migration_info(benchmark, None)


def test_migration_budgeted_drain(benchmark):
    store = fresh_store(budget=BUDGET)
    state = {"flip": False}

    def drain():
        state["flip"] = not state["flip"]
        store.lifecycle.begin(TARGET_A if state["flip"] else TARGET_B)
        steps = 0
        while store.lifecycle.active:
            store.lifecycle.step()
            steps += 1
        store.lifecycle.drain_notices()  # keep the queue bounded across rounds
        return steps

    steps = benchmark(drain)
    assert steps == N_ITEMS // BUDGET
    record_migration_info(benchmark, BUDGET)


def test_migration_budgeted_single_step(benchmark):
    """The per-tick charge: one budget's worth of relocations."""
    store = fresh_store(budget=BUDGET)
    store.lifecycle.begin(TARGET_A)
    state = {"flip": True}

    def step():
        if not store.lifecycle.active:
            state["flip"] = not state["flip"]
            store.lifecycle.begin(TARGET_A if state["flip"] else TARGET_B)
            store.lifecycle.drain_notices()
        return store.lifecycle.step()

    report = benchmark(step)
    assert report.moved <= BUDGET

    def one_step():
        fresh = fresh_store(BUDGET)
        fresh.lifecycle.begin(TARGET_A)
        before = fresh.index.accountant.snapshot()
        fresh.lifecycle.step()
        return fresh.index.accountant.cost_since(before, COST_PARAMS)

    benchmark.extra_info["cost_units"] = round(one_step(), 6)


def test_budget_retimes_rather_than_discounts():
    """Sanity pin for the recorded numbers: identical totals, higher
    dual-structure peak for the budgeted drain."""
    stw_cost, stw_peak = replay_migration(None)
    budgeted_cost, budgeted_peak = replay_migration(BUDGET)
    assert budgeted_cost == stw_cost
    assert budgeted_peak > stw_peak
