"""Ablation: the migration cost/benefit gate.

The tuner migrates only when the projected per-tick saving, over the next
assessment window, beats the relocation cost (``min_benefit_ratio``).
Setting the ratio to 0 migrates on any nominal improvement (thrash risk);
a large ratio freezes the index (staleness risk).  This sweep quantifies
the middle ground the default (1.0) sits in.
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.experiments.harness import train_initial_state
from repro.workloads.scenarios import PaperScenario, ScenarioParams

RATIOS = (0.0, 1.0, 25.0)


def run_with_ratio(ratio: float):
    scenario = PaperScenario(ScenarioParams(seed=7))
    training = train_initial_state(scenario, train_ticks=60)
    executor = scenario.make_executor(
        "amri:cdia-highest", initial_configs=training.configs
    )
    for stem in executor.stems.values():
        stem.tuner.min_benefit_ratio = ratio
    return executor.run(BENCH_TICKS, scenario.make_generator())


@pytest.mark.parametrize("ratio", RATIOS)
def test_migration_gate(benchmark, ratio):
    stats = run_once(benchmark, lambda: run_with_ratio(ratio))
    benchmark.extra_info["min_benefit_ratio"] = ratio
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["migrations"] = stats.migrations
    assert stats.completed


def test_gate_ordering(benchmark):
    """Migration counts must fall monotonically as the gate tightens."""

    def sweep():
        return {r: run_with_ratio(r) for r in RATIOS}

    runs = run_once(benchmark, sweep)
    benchmark.extra_info["migrations"] = {r: s.migrations for r, s in runs.items()}
    benchmark.extra_info["outputs"] = {r: s.outputs for r, s in runs.items()}
    assert runs[0.0].migrations >= runs[1.0].migrations >= runs[25.0].migrations
