"""Ablation: router exploration rate vs statistics pollution.

The paper motivates compaction with the router's sub-optimal exploratory
probes: rare access patterns that bloat statistics without deserving
indexes.  This ablation sweeps the exploration probability and records
AMRI throughput plus the assessment entry counts, showing the overhead
exploration adds and that the compact assessors absorb it.
"""

import pytest

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.experiments.harness import train_initial_state, run_scheme
from repro.workloads.scenarios import PaperScenario, ScenarioParams

RATES = (0.0, 0.15, 0.4)


@pytest.mark.parametrize("explore", RATES)
def test_exploration_rate(benchmark, explore):
    scenario = PaperScenario(ScenarioParams(seed=7, explore_prob=explore))

    def run():
        training = train_initial_state(scenario, train_ticks=60)
        return run_scheme(
            scenario, "amri:cdia-highest", BENCH_TICKS, training=training
        )

    stats = run_once(benchmark, run)
    benchmark.extra_info["explore_prob"] = explore
    benchmark.extra_info["outputs"] = stats.outputs
    benchmark.extra_info["died_at"] = stats.died_at
    assert stats.probes > 0


def test_exploration_shape(benchmark):
    """Heavy exploration costs throughput relative to none."""

    def sweep():
        out = {}
        for explore in (0.0, 0.4):
            scenario = PaperScenario(ScenarioParams(seed=7, explore_prob=explore))
            training = train_initial_state(scenario, train_ticks=60)
            out[explore] = run_scheme(
                scenario, "amri:cdia-highest", BENCH_TICKS, training=training
            )
        return out

    runs = run_once(benchmark, sweep)
    benchmark.extra_info["outputs"] = {e: r.outputs for e, r in runs.items()}
    assert runs[0.0].outputs > 0 and runs[0.4].outputs > 0
