"""Ablation: windowed vs cumulative assessment statistics.

The paper's assessment phases have explicit ends (statistics are read and a
new window begins).  The alternative — letting the heavy-hitter sketches
accumulate across tuning rounds — reacts more slowly to drift but tunes
with less churn.  This ablation runs AMRI both ways over identical
arrivals.
"""

from benchmarks.conftest import BENCH_TICKS, run_once
from repro.experiments.harness import train_initial_state
from repro.workloads.scenarios import PaperScenario, ScenarioParams


def run_mode(reset_after_tune: bool):
    scenario = PaperScenario(ScenarioParams(seed=7))
    training = train_initial_state(scenario, train_ticks=60)
    executor = scenario.make_executor(
        "amri:cdia-highest", initial_configs=training.configs
    )
    for stem in executor.stems.values():
        stem.tuner.reset_after_tune = reset_after_tune
    return executor.run(BENCH_TICKS, scenario.make_generator())


def test_windowed_vs_cumulative(benchmark):
    def compare():
        return run_mode(True), run_mode(False)

    windowed, cumulative = run_once(benchmark, compare)
    benchmark.extra_info["windowed_outputs"] = windowed.outputs
    benchmark.extra_info["windowed_migrations"] = windowed.migrations
    benchmark.extra_info["cumulative_outputs"] = cumulative.outputs
    benchmark.extra_info["cumulative_migrations"] = cumulative.migrations
    # Windowed statistics chase the current regime: strictly more migrations.
    assert windowed.migrations >= cumulative.migrations
    assert windowed.completed and cumulative.completed
