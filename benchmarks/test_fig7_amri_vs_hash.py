"""Figure 7 (AMRI vs best hash configuration).

Paper claim: AMRI produces ~93% more results than even the best hash-index
configuration over the same period (the best trial also dies early, which
is most of the gap).  We regenerate the comparison and assert the shape:
AMRI wins by a wide margin (>30% at benchmark scale).
"""

from benchmarks.conftest import BENCH_TICKS_LONG, run_once
from repro.experiments.harness import run_scheme
from repro.experiments.reporting import improvement_pct

KS = (1, 2, 3, 4, 5, 6, 7)


def test_fig7_amri_vs_best_hash(benchmark, bench_scenario, bench_training):
    def compare():
        hash_runs = {
            k: run_scheme(bench_scenario, f"hash:{k}", BENCH_TICKS_LONG, training=bench_training)
            for k in KS
        }
        amri = run_scheme(
            bench_scenario, "amri:cdia-highest", BENCH_TICKS_LONG, training=bench_training
        )
        return hash_runs, amri

    hash_runs, amri = run_once(benchmark, compare)
    best_k = max(hash_runs, key=lambda k: hash_runs[k].outputs)
    best = hash_runs[best_k]
    pct = improvement_pct(amri.outputs, best.outputs)
    benchmark.extra_info["best_hash_k"] = best_k
    benchmark.extra_info["amri_outputs"] = amri.outputs
    benchmark.extra_info["best_hash_outputs"] = best.outputs
    benchmark.extra_info["improvement_pct"] = round(pct, 1)
    benchmark.extra_info["paper_improvement_pct"] = 93.0

    assert amri.completed
    assert pct > 30.0, f"AMRI only {pct:.0f}% ahead of best hash (paper: ~93%)"
