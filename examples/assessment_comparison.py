"""Assessment methods side by side on a polluted, drifting pattern stream.

Recreates the situation Section IV is about, outside the engine: a state
with 5 join attributes (31 possible access patterns) receives search
requests whose frequent patterns drift, polluted by the router's uniform
exploration probes.  All four assessment methods watch the same stream;
the script reports, per method:

- peak statistics entries held (the memory the compaction saves),
- the frequent patterns reported at θ = 10%,
- how much workload mass those reports retain.

Run:  python examples/assessment_comparison.py
"""

from repro.core import JoinAttributeSet, make_assessor
from repro.core.assessment import ASSESSOR_NAMES
from repro.workloads import (
    PatternStream,
    with_exploration_noise,
    zipf_distribution,
)

THETA = 0.10
EPSILON = 0.02
N_REQUESTS = 8_000


def build_stream(jas, seed=0):
    hot_early = with_exploration_noise(zipf_distribution(jas, s=1.6, seed=seed), jas, 0.3)
    hot_late = with_exploration_noise(zipf_distribution(jas, s=1.6, seed=seed + 7), jas, 0.3)
    return PatternStream(
        [(N_REQUESTS // 2, hot_early), (N_REQUESTS // 2, hot_late)], seed=seed
    )


def main() -> None:
    jas = JoinAttributeSet(["A", "B", "C", "D", "E"])
    print(f"state with {len(jas)} join attributes -> {2**len(jas) - 1} possible patterns")
    print(f"workload: {N_REQUESTS} requests, drifting Zipf + 30% exploration noise\n")

    for name in ASSESSOR_NAMES:
        assessor = make_assessor(name, jas, epsilon=EPSILON, seed=1)
        peak = 0
        for ap in build_stream(jas):
            assessor.record(ap)
            peak = max(peak, assessor.entry_count)
        frequent = assessor.frequent_patterns(THETA)
        mass = sum(frequent.values())
        tops = sorted(frequent.items(), key=lambda kv: -kv[1])[:3]
        top_str = ", ".join(f"{ap!r}:{f:.0%}" for ap, f in tops)
        print(
            f"{name:13s} peak entries {peak:3d}   "
            f"frequent@{THETA:.0%}: {len(frequent):2d} patterns "
            f"({mass:.0%} of mass)   top: {top_str}"
        )

    print(
        "\nreading: SRIA/DIA hold every observed pattern; CSRIA holds the "
        "lossy-counting bound and deletes tail mass; CDIA holds lattice nodes "
        "and re-routes tail mass into generalizations instead of deleting it."
    )


if __name__ == "__main__":
    main()
