"""Quickstart: the AMRI bit-address index on the paper's intro example.

Recreates Section I-A / Figure 3: a package-tracking state whose tuples
carry *priority code*, *package id*, and *location id*, indexed by a single
bit-address index instead of multiple hash indices.  Shows insertion, the
two worked search requests (sr1 and sr2), and an index migration.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AccessPattern,
    IndexConfiguration,
    JoinAttributeSet,
    make_bit_index,
)


def main() -> None:
    # The state's join-attribute set: A1 = priority, A2 = package, A3 = location.
    jas = JoinAttributeSet(["priority", "package", "location"])

    # Figure 3's index key map: 5 bits for priority, 2 for package, 3 for
    # location — 10 bits, 1024 logical buckets.
    index = make_bit_index(jas, {"priority": 5, "package": 2, "location": 3})
    print(f"index: {index.describe()}")

    # Sensors report package sightings.
    readings = [
        {"priority": 2012, "package": pkg, "location": loc}
        for pkg, loc in [(17, 47), (18, 47), (19, 3), (17, 12)]
    ] + [
        {"priority": prio, "package": pkg, "location": loc}
        for prio, pkg, loc in [(7, 20, 47), (7, 21, 5), (99, 22, 47)]
    ]
    for r in readings:
        index.insert(r)
    print(f"inserted {index.size} readings into {index.bucket_count} buckets")

    # sr1: all packages with priority 2012 at location 47 (two attributes).
    sr1 = AccessPattern.from_attributes(jas, ["priority", "location"])
    hits = index.search(sr1, {"priority": 2012, "location": 47})
    print(f"\nsr1 {sr1!r}: {len(hits.matches)} matches, "
          f"examined {hits.tuples_examined} tuples, visited {hits.buckets_visited} buckets")
    for m in hits.matches:
        print(f"   {dict(m)}")

    # sr2: all packages at location 47 — the request that forced a full scan
    # under the multi-hash design.  The bit-address index serves it from the
    # same structure: the location fragment narrows the search.
    sr2 = AccessPattern.from_attributes(jas, ["location"])
    hits = index.search(sr2, {"location": 47})
    print(f"\nsr2 {sr2!r}: {len(hits.matches)} matches, "
          f"examined {hits.tuples_examined} of {index.size} stored tuples "
          f"(a hash-index scheme without a location module scans all of them)")

    # The workload turns out to be location-heavy: migrate the key map.
    new_config = IndexConfiguration(jas, {"priority": 2, "package": 0, "location": 8})
    report = index.reconfigure(new_config)
    print(f"\nmigrated {report.tuples_moved} tuples: {report.old_config!r} -> {report.new_config!r}")
    hits = index.search(sr2, {"location": 47})
    print(f"sr2 after migration: {len(hits.matches)} matches, examined {hits.tuples_examined}")


if __name__ == "__main__":
    main()
