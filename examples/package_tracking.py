"""Package tracking: on-line tuning of one state under a workload shift.

The paper's motivating application (Section I-A) at the level of a single
STeM: a stream of sensor readings is indexed by AMRI while the search-request
workload shifts — first dispatchers query by (priority, location), then an
audit job floods the state with package-id lookups.  The AMRI tuner notices
the shift through its CDIA assessment and migrates the index configuration;
the script reports how many tuples each phase's requests had to examine
before and after tuning.

Run:  python examples/package_tracking.py
"""

import numpy as np

from repro.core import (
    AMRITuner,
    AccessPattern,
    CDIA,
    IndexSelector,
    JoinAttributeSet,
    TuningContext,
    make_bit_index,
)

RATE = 50  # readings per time unit
WINDOW = 20  # time units a reading stays relevant
TUNE_EVERY = 25  # time units between assessment rounds
BIT_BUDGET = 16


def make_reading(rng: np.random.Generator) -> dict[str, int]:
    return {
        "priority": int(rng.integers(8)),
        "package": int(rng.integers(4096)),
        "location": int(rng.integers(64)),
    }


def phase_requests(rng, jas, phase: str):
    """One search request per time unit, shaped by the active workload."""
    dispatch = AccessPattern.from_attributes(jas, ["priority", "location"])
    audit = AccessPattern.from_attributes(jas, ["package"])
    local = AccessPattern.from_attributes(jas, ["location"])
    if phase == "dispatch":
        choices, weights = [dispatch, local], [0.8, 0.2]
    else:  # audit
        choices, weights = [audit, local], [0.85, 0.15]
    for _ in range(30):
        ap = choices[int(rng.choice(len(choices), p=weights))]
        values = make_reading(rng)
        yield ap, values


def main() -> None:
    rng = np.random.default_rng(42)
    jas = JoinAttributeSet(["priority", "package", "location"])
    index = make_bit_index(jas, {"priority": 6, "package": 5, "location": 5})
    tuner = AMRITuner(
        index,
        CDIA(jas, epsilon=0.05, combine="highest_count", seed=1),
        IndexSelector(jas, BIT_BUDGET),
        theta=0.1,
    )
    domain_bits = {"priority": 3, "package": 12, "location": 6}

    stored: list[dict[str, int]] = []
    examined_by_phase: dict[str, list[int]] = {"dispatch": [], "audit": []}

    tick = 0
    for phase, phase_len in [("dispatch", 100), ("audit", 100)]:
        print(f"\n=== phase {phase!r} starts at tick {tick}; IC = {index.config!r}")
        for _ in range(phase_len):
            # arrivals + window expiry
            for _ in range(RATE):
                reading = make_reading(rng)
                index.insert(reading)
                stored.append(reading)
            while len(stored) > RATE * WINDOW:
                index.remove(stored.pop(0))
            # the phase's search requests
            for ap, values in phase_requests(rng, jas, phase):
                tuner.observe(ap)
                outcome = index.search(ap, values)
                examined_by_phase[phase].append(outcome.tuples_examined)
            tick += 1
            if tick % TUNE_EVERY == 0:
                report = tuner.tune(
                    TuningContext(
                        lambda_d=RATE, window=WINDOW, horizon=TUNE_EVERY,
                        domain_bits=domain_bits,
                    )
                )
                if report is not None and report.migrated:
                    print(
                        f"  tick {tick}: migrated {report.old_description} -> "
                        f"{report.new_description} "
                        f"(projected saving {report.projected_saving:,.0f}/tick)"
                    )

    print("\naverage tuples examined per request:")
    for phase, samples in examined_by_phase.items():
        first, second = samples[: len(samples) // 2], samples[len(samples) // 2 :]
        print(
            f"  {phase:9s}: first half {np.mean(first):7.1f}   "
            f"second half {np.mean(second):7.1f}   (state holds {index.size} readings)"
        )
    print(f"\nfinal IC: {index.config!r}")


if __name__ == "__main__":
    main()
