"""Stock monitoring: the full AMR engine on the paper's motivating workload.

Section I motivates AMRI with an analyst combining live *price* and *volume*
data with *news* and *sector* feeds.  This example builds that query as a
4-way join (every pair of feeds correlated on its own key, exactly the
Section V topology), runs it with drifting selectivities, and compares
cumulative throughput of three index schemes over identical arrivals:

- AMRI (bit-address index + CDIA-highest tuning),
- the multi-hash access-module baseline (3 modules, adaptively retuned),
- a non-adapting bitmap index.

Run:  python examples/stock_monitoring.py          (~1 minute)
      python examples/stock_monitoring.py --quick  (~15 seconds)
"""

import argparse

from repro.experiments import (
    format_summary,
    format_throughput_figure,
    run_comparison,
)
from repro.workloads import PaperScenario, ScenarioParams


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="shorter run")
    args = parser.parse_args()
    ticks = 150 if args.quick else 450

    # The four feeds; every pair shares a correlation key (ticker buckets,
    # sector codes, ...), giving each state 3 join attributes — the paper's
    # evaluation topology with market-flavoured names.
    scenario = PaperScenario(
        ScenarioParams(stream_names=("price", "volume", "news", "sector"), seed=11)
    )
    print(f"query: {scenario.query!r}")
    print(f"state JAS example: {list(scenario.query.jas_for('price').names)}")

    runs = run_comparison(
        scenario,
        ["amri:cdia-highest", "hash:3", "static"],
        ticks,
        train=True,
        train_ticks=80,
    )
    print()
    print(format_throughput_figure("cumulative results (output tuples)", runs))
    amri = runs["amri:cdia-highest"].outputs
    print()
    print(
        format_summary(
            "who wins:",
            [
                ("AMRI", amri, "multi-hash (3 modules)", runs["hash:3"].outputs),
                ("AMRI", amri, "non-adapting bitmap", runs["static"].outputs),
            ],
        )
    )
    for name, stats in runs.items():
        state = "completed" if stats.completed else f"out of memory at tick {stats.died_at}"
        print(f"  {name}: {state}; {stats.migrations} index migrations")


if __name__ == "__main__":
    main()
