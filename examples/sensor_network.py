"""Sensor network monitoring: bursty arrivals over a 3-way join.

An extension scenario beyond the paper's Section V setup (which is a steady
4-way join): *readings*, *alerts*, and *maintenance* events are pairwise
correlated, arrivals follow a diurnal cycle with event bursts, and join
selectivities drift.  Bursts are where index quality matters most — a
mis-tuned index turns each burst into backlog that presses on the memory
budget — so this is the stress test for AMRI's tuner.

Run:  python examples/sensor_network.py          (~40 seconds)
      python examples/sensor_network.py --quick  (~10 seconds)
"""

import argparse

from repro.experiments import (
    format_summary,
    format_throughput_figure,
    run_scheme,
    train_initial_state,
)
from repro.workloads import sensor_network_scenario


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    ticks = 120 if args.quick else 400

    scenario = sensor_network_scenario()
    print(f"query: {scenario.query!r}")
    print("arrivals: diurnal cycle + 3x event bursts; selectivity drift every "
          f"{scenario.params.phase_len} ticks\n")

    training = train_initial_state(scenario, train_ticks=60)
    runs = {
        scheme: run_scheme(scenario, scheme, ticks, training=training)
        for scheme in ("amri:cdia-highest", "static", "hash:2")
    }
    print(format_throughput_figure("cumulative results (output tuples)", runs))
    amri = runs["amri:cdia-highest"].outputs
    print()
    print(
        format_summary(
            "who wins under bursts:",
            [
                ("AMRI", amri, "non-adapting bitmap", runs["static"].outputs),
                ("AMRI", amri, "multi-hash (2 modules)", runs["hash:2"].outputs),
            ],
        )
    )
    for name, stats in runs.items():
        peak_backlog = max(s.backlog for s in stats.samples)
        state = "completed" if stats.completed else f"OOM at tick {stats.died_at}"
        print(f"  {name}: {state}; peak burst backlog {peak_backlog} requests")


if __name__ == "__main__":
    main()
