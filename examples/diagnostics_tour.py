"""Operator tour: watching AMRI tune itself, with diagnostics and tracing.

Runs the Section V scenario for a few drift phases with an event log
attached, then prints:

- the engine event log (every tuning decision and migration, per state),
- a per-state index health report (occupancy, memory, and *staleness* —
  how far the current configuration is from what the selector would choose
  for the current workload).

Run:  python examples/diagnostics_tour.py
"""

from repro.core.diagnostics import format_report, inspect_state
from repro.engine.tracing import EventLog
from repro.workloads import PaperScenario, ScenarioParams

TICKS = 180


def main() -> None:
    scenario = PaperScenario(ScenarioParams(seed=19))
    executor = scenario.make_executor(
        "amri:cdia-highest", capacity=1e9, memory_budget=1 << 30
    )
    executor.event_log = EventLog()

    print(f"running {scenario.query!r} for {TICKS} ticks...\n")
    stats = executor.run(TICKS, scenario.make_generator())
    print(
        f"outputs={stats.outputs}  probes={stats.probes}  "
        f"tuning rounds={stats.tuning_rounds}  migrations={stats.migrations}\n"
    )

    print("=== engine events (tuning decisions)")
    for line in executor.event_log.to_lines():
        print(" ", line)
    busiest = executor.event_log.migrations_by_stream()
    if busiest:
        print(f"  migrations by state: {busiest}")

    print("\n=== index health")
    snapshots = []
    p = scenario.params
    for stream, stem in executor.stems.items():
        snapshots.append(
            inspect_state(
                stream,
                stem.index,
                stem.tuner.assessor,
                theta=p.theta,
                lambda_d=float(p.rate),
                lambda_r=max(stem.tuner.assessor.n_requests / TICKS, 1.0),
                window=float(p.window),
                domain_bits=scenario.domain_bits(),
                selector=stem.tuner.selector,
            )
        )
    print(format_report(snapshots))
    print(
        "\nreading: 'stale' is the cost saving the selector projects from "
        "re-tuning right now; just-migrated states read ~0%."
    )


if __name__ == "__main__":
    main()
