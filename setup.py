"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so the package can be
installed editable (`pip install -e . --no-use-pep517 --no-build-isolation`)
in offline environments that lack the `wheel` package required by PEP-517
editable builds.
"""

from setuptools import setup

setup()
