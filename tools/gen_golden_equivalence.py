#!/usr/bin/env python
"""Regenerate the golden-equivalence fingerprints.

    PYTHONPATH=src python tools/gen_golden_equivalence.py

Writes ``tests/integration/golden_equivalence.json``: one fingerprint per
:data:`repro.experiments.golden.CASES` entry, capturing the engine's
RunStats, event log, and metrics snapshot byte-for-byte.

The committed file was generated from the pre-kernel monolithic
``AMRExecutor``; ``tests/integration/test_golden_equivalence.py`` holds
the staged kernel to it.  Only regenerate when run semantics change on
purpose — a refactor that needs regeneration is not a refactor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.golden import CASES, run_all

OUT = Path(__file__).resolve().parent.parent / "tests" / "integration" / "golden_equivalence.json"


def main() -> int:
    fingerprints = run_all()
    OUT.write_text(json.dumps(fingerprints, indent=1, sort_keys=True) + "\n")
    total = sum(fp["stats"]["outputs"] for fp in fingerprints.values())
    print(f"wrote {OUT} ({len(CASES)} cases, {total} total outputs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
