#!/usr/bin/env python
"""Regenerate the golden-equivalence fingerprints.

    PYTHONPATH=src python tools/gen_golden_equivalence.py

Writes ``tests/integration/golden_equivalence.json.gz``: one fingerprint
per :data:`repro.experiments.golden.CASES` entry, capturing the engine's
RunStats, event log, and metrics snapshot byte-for-byte.  The corpus is
stored gzipped (fixed mtime, so regenerating unchanged semantics produces
a bit-identical file).

The committed file was generated from the pre-kernel monolithic
``AMRExecutor``; ``tests/integration/test_golden_equivalence.py`` holds
the staged kernel to it.  Only regenerate when run semantics change on
purpose — a refactor that needs regeneration is not a refactor.
"""

from __future__ import annotations

import gzip
import json
import sys
from pathlib import Path

from repro.experiments.golden import CASES, run_all

OUT = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "integration"
    / "golden_equivalence.json.gz"
)


def main() -> int:
    fingerprints = run_all()
    payload = (json.dumps(fingerprints, indent=1, sort_keys=True) + "\n").encode()
    # mtime=0 keeps the gzip header deterministic: regenerating unchanged
    # semantics yields a byte-identical file (clean diffs, stable hashes).
    OUT.write_bytes(gzip.compress(payload, mtime=0))
    total = sum(fp["stats"]["outputs"] for fp in fingerprints.values())
    print(f"wrote {OUT} ({len(CASES)} cases, {total} total outputs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
