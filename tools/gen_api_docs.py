"""Generate docs/api.md from the public API's docstrings.

Introspects the exported names of every ``repro`` subpackage and writes a
compact reference: one section per package, one entry per public class or
function with its signature and docstring summary.  Rerun after changing
public APIs:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

PACKAGES = [
    "repro.core",
    "repro.sketches",
    "repro.indexes",
    "repro.storage",
    "repro.engine",
    "repro.engine.kernel",
    "repro.fleet",
    "repro.workloads",
    "repro.experiments",
    "repro.utils",
]


def summary_of(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
    return first


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def entry_for(name: str, obj) -> list[str]:
    lines = []
    if inspect.isclass(obj):
        lines.append(f"### `{name}{signature_of(obj)}`")
        lines.append("")
        lines.append(summary_of(obj))
        methods = [
            (m, fn)
            for m, fn in inspect.getmembers(obj, predicate=callable)
            if not m.startswith("_") and inspect.getdoc(fn)
            and (inspect.isfunction(fn) or inspect.ismethod(fn))
        ]
        if methods:
            lines.append("")
            for m, fn in sorted(methods):
                lines.append(f"- `.{m}{signature_of(fn)}` — {summary_of(fn)}")
    elif callable(obj):
        lines.append(f"### `{name}{signature_of(obj)}`")
        lines.append("")
        lines.append(summary_of(obj))
    else:
        lines.append(f"### `{name}`")
        lines.append("")
        lines.append(f"Constant: `{obj!r}`")
    lines.append("")
    return lines


def main() -> int:
    out: list[str] = [
        "# API reference",
        "",
        "Generated from docstrings by `python tools/gen_api_docs.py`; do not edit by hand.",
        "",
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", None)
        if exported is None:
            exported = [n for n in vars(pkg) if not n.startswith("_")]
        out.append(f"## {pkg_name}")
        out.append("")
        pkg_summary = summary_of(pkg)
        if pkg_summary:
            out.append(pkg_summary)
            out.append("")
        for name in sorted(exported):
            obj = getattr(pkg, name, None)
            if obj is None:
                continue
            out.extend(entry_for(name, obj))
    target = Path(__file__).resolve().parent.parent / "docs" / "api.md"
    target.write_text("\n".join(out))
    print(f"wrote {target} ({len(out)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
