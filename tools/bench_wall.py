#!/usr/bin/env python
"""Wall-clock benchmarks of the hot paths, with labelled before/after runs.

The cost-unit benchmarks (``BENCH_micro.json``) gate *model* regressions;
this tool measures what they deliberately ignore — real Python wall-clock —
so hot-path optimisations (compiled probe plans, memoized fragment hashing,
the shared training cache) have committed evidence:

    PYTHONPATH=src python tools/bench_wall.py --label before
    # ...optimise...
    PYTHONPATH=src python tools/bench_wall.py --label after

Each invocation merges its run under ``runs[<label>]`` in the output JSON
(default ``BENCH_wall.json``); whenever both ``before`` and ``after`` are
present a ``speedup`` section (before/after seconds ratio per benchmark) is
recomputed.  Timings are the **minimum** over ``--repeats`` repetitions —
the least-noise estimator for CI-grade wall clocks.  A ``footprint``
section records bytes per instance of the hot dataclasses (measured with
``tracemalloc``), which is how the ``slots=True`` savings are documented.

Benchmarks
----------
- ``bit_index_insert``    — 2 000 inserts into a fresh bit-address index
- ``bit_index_probe``     — 3 000 probes across 1/2/3-attribute patterns
                            (the acceptance "probe micro-benchmark")
- ``multi_hash_probe``    — 3 000 probes against the hash-module baseline
- ``bit_index_migrate``   — 10 full key-map migrations of 2 000 tuples
- ``end_to_end_scenario`` — quasi-training plus a measured AMRI run on the
                            small 3-way paper scenario (the acceptance
                            "end-to-end scenario benchmark")
- ``parallel_training_shared`` — three same-params specs through
                            ``run_parallel(workers=0)``; the shared
                            training cache collapses 3 trainings into 1
- ``probe_plane_serial`` / ``probe_plane_batch64`` — the same Zipf-skewed
                            probe column through per-row ``search`` vs
                            64-row ``search_batch`` calls; their ratio is
                            recorded per label under ``batch_speedup``
                            (the batch data plane's acceptance evidence)
- ``fleet_router``        — 3 000 probe patterns cost-scored against a
                            3-replica divergent fleet's live bit indexes
                            (score-and-argmin, the router's per-request hot
                            path); the same run records the fleet's modeled
                            cost units vs 3 copies of the single best
                            configuration under ``fleet_cost_units``, and
                            their per-label ratio under ``fleet_speedup``
                            (the divergent-fleet acceptance evidence)
- ``latency_p95``         — 50 000 latency observations through the SLO
                            plane's tracker + per-tick burn-rate monitor,
                            ending in a p95 quantile estimate (the
                            observability plane's per-tuple overhead)
- ``probe_sparse_eager`` / ``probe_sparse_lazy`` — the same probe-sparse
                            streaming window (insert/expire churn with only
                            a handful of probes) through an eagerly built
                            inverted index vs the lazy admission tier; their
                            within-label ratio is recorded under
                            ``crack_speedup`` (the lazy-indexing refactor's
                            acceptance evidence)
- ``probe_parallel_serial`` / ``probe_parallel_pool4`` — the Zipf probe
                            plane chunked through epoch-tagged store
                            snapshots, inline vs a real 4-thread pool
                            (wall seconds of both paths, recorded for the
                            record); the *committed* acceptance ratio,
                            ``probe_parallel_speedup``, is the measured
                            cost-model makespan ratio — total probe work
                            units over the 4-worker critical path under
                            the pool's actual earliest-free-worker chunk
                            schedule (``probe_parallel_cost_units``).
                            Machine-independent by design, like
                            ``fleet_speedup``: on a single-CPU CI host the
                            GIL serialises the pool's wall clock, so the
                            wall ratio documents overhead while the
                            makespan ratio documents the parallelism the
                            schedule actually exposes.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.access_pattern import AccessPattern, JoinAttributeSet  # noqa: E402
from repro.core.bit_index import make_bit_index  # noqa: E402
from repro.core.cost_model import WorkloadStatistics  # noqa: E402
from repro.core.index_config import IndexConfiguration  # noqa: E402
from repro.core.selector import fleet_cost, select_fleet  # noqa: E402
from repro.fleet import score_index  # noqa: E402
from repro.indexes.hash_index import MultiHashIndex  # noqa: E402
from repro.indexes.inverted_index import InvertedListIndex  # noqa: E402
from repro.utils.bitops import splitmix64  # noqa: E402

JAS = JoinAttributeSet(["A", "B", "C"])
N_ITEMS = 2_000
N_PROBES = 3_000
BATCH_SIZE = 64
ZIPF_S = 2.5
ZIPF_DOMAIN = 256
SPARSE_STREAM_N = 6_000
SPARSE_WINDOW = 400
SPARSE_PROBE_EVERY = 400
#: Promotion bar the lazy sparse bench consults at every probe — high
#: enough that the handful of probes never crosses it, so the cost being
#: measured is pure admission-tier churn (the probe-sparse regime).
SPARSE_PROMOTE_THRESHOLD = 1e9
FLEET_K = 3
FLEET_BUDGET = 8
#: The parallel probe plane's committed acceptance width.
PROBE_WORKERS = 4


def make_items(n: int = N_ITEMS) -> list[dict]:
    return [{"A": i % 251, "B": (i * 7) % 239, "C": (i * 13) % 241} for i in range(n)]


def populated_bit_index():
    idx = make_bit_index(JAS, {"A": 8, "B": 8, "C": 8})
    for item in make_items():
        idx.insert(item)
    return idx


def populated_hash_index():
    patterns = [
        AccessPattern.from_attributes(JAS, ["A"]),
        AccessPattern.from_attributes(JAS, ["A", "B"]),
        AccessPattern.from_attributes(JAS, ["B", "C"]),
    ]
    idx = MultiHashIndex(JAS, patterns)
    for item in make_items():
        idx.insert(item)
    return idx


def probe_workload(n: int = N_PROBES) -> list[tuple[AccessPattern, dict]]:
    """A deterministic mixed-width probe sequence (1/2/3 attributes)."""
    patterns = [
        AccessPattern.from_attributes(JAS, ["A"]),
        AccessPattern.from_attributes(JAS, ["A", "B"]),
        AccessPattern.from_attributes(JAS, ["A", "B", "C"]),
    ]
    return [
        (patterns[i % 3], {"A": i % 251, "B": (i * 7) % 239, "C": (i * 13) % 241})
        for i in range(n)
    ]


def zipf_probe_workload(n: int = N_PROBES) -> tuple[AccessPattern, list[dict]]:
    """``n`` Zipf(s=2)-skewed two-attribute probe rows on one pattern.

    Stream joins probe hot keys overwhelmingly often; a skewed column is
    where the batch plane's row deduplication pays.  The draw is fully
    deterministic (splitmix64 uniforms through the Zipf CDF), so serial and
    batched runs time the identical row sequence.
    """
    from bisect import bisect_left

    weights = [1.0 / (k + 1) ** ZIPF_S for k in range(ZIPF_DOMAIN)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def draw(i: int) -> int:
        u = splitmix64(i) / 2**64
        return bisect_left(cdf, u)

    ap = AccessPattern.from_attributes(JAS, ["A", "B"])
    rows = [{"A": draw(2 * i), "B": draw(2 * i + 1)} for i in range(n)]
    return ap, rows


# --------------------------------------------------------------------- #
# benchmark bodies (each returns the number of operations it performed)


def bench_bit_index_insert() -> int:
    items = make_items()
    idx = make_bit_index(JAS, {"A": 8, "B": 8, "C": 8})
    for item in items:
        idx.insert(item)
    return len(items)


def bench_bit_index_probe(idx=None) -> int:
    if idx is None:
        idx = populated_bit_index()
    workload = probe_workload()
    for ap, values in workload:
        idx.search(ap, values)
    return len(workload)


def bench_multi_hash_probe(idx=None) -> int:
    if idx is None:
        idx = populated_hash_index()
    workload = probe_workload()
    for ap, values in workload:
        idx.search(ap, values)
    return len(workload)


def bench_probe_plane_serial(idx=None) -> int:
    if idx is None:
        idx = populated_bit_index()
    ap, rows = zipf_probe_workload()
    for values in rows:
        idx.search(ap, values)
    return len(rows)


def bench_probe_plane_batch64(idx=None) -> int:
    if idx is None:
        idx = populated_bit_index()
    ap, rows = zipf_probe_workload()
    for start in range(0, len(rows), BATCH_SIZE):
        idx.search_batch(ap, rows[start : start + BATCH_SIZE])
    return len(rows)


def probe_parallel_fixture():
    """A populated store plus the Zipf probe plane pre-split into chunks.

    The same ``bit_index_probe``-style workload the batch benches use, but
    probed through :meth:`StateStore.snapshot` /
    :meth:`~repro.storage.snapshot.StoreSnapshot.probe_chunk` — the exact
    worker-side code path of the parallel probe plane.
    """
    from repro.engine.tuples import StreamTuple
    from repro.storage import StateStore

    idx = make_bit_index(JAS, {"A": 8, "B": 8, "C": 8})
    store = StateStore("S", JAS, idx, window=1 << 30)
    for i, item in enumerate(make_items()):
        store.insert(StreamTuple("S", 0, item), 0)
    ap, rows = zipf_probe_workload()
    chunks = [rows[start : start + BATCH_SIZE] for start in range(0, len(rows), BATCH_SIZE)]
    return store, ap, chunks


def bench_probe_parallel_serial(fixture=None) -> int:
    """Every chunk probed inline on one thread (the coordinator's path)."""
    if fixture is None:
        fixture = probe_parallel_fixture()
    store, ap, chunks = fixture
    snapshot = store.snapshot()
    for chunk in chunks:
        snapshot.probe_chunk(ap, chunk)
    return sum(len(c) for c in chunks)


def bench_probe_parallel_pool4(fixture=None) -> int:
    """The same chunks fanned out to a real 4-thread pool.

    Wall seconds here include whatever the host's core count and the GIL
    allow — recorded for the record, not the committed ratio (see the
    module docstring).
    """
    from concurrent.futures import ThreadPoolExecutor

    if fixture is None:
        fixture = probe_parallel_fixture()
    store, ap, chunks = fixture
    snapshot = store.snapshot()
    with ThreadPoolExecutor(max_workers=PROBE_WORKERS) as pool:
        futures = [pool.submit(snapshot.probe_chunk, ap, chunk) for chunk in chunks]
        for future in futures:
            future.result()
    return sum(len(c) for c in chunks)


def probe_parallel_cost_units() -> dict:
    """Measured probe work per chunk, scheduled onto ``PROBE_WORKERS`` workers.

    Each chunk's work units are read off its scratch accountant (hashes +
    buckets visited + tuples examined + comparisons — the integer counters
    the cost model charges for), so the tally is deterministic and
    machine-independent.  Chunks are then assigned in submission order to
    the earliest-free worker — exactly how a thread pool's queue drains —
    and the critical path is the busiest worker's total.  The committed
    ``probe_parallel_speedup`` is ``serial / critical_path``.
    """
    store, ap, chunks = probe_parallel_fixture()
    snapshot = store.snapshot()
    units = []
    for chunk in chunks:
        scratch = snapshot.probe_chunk(ap, chunk).scratch
        units.append(
            scratch.hashes
            + scratch.buckets_visited
            + scratch.tuples_examined
            + scratch.comparisons
        )
    free = [0.0] * PROBE_WORKERS
    for work in units:
        free[min(range(PROBE_WORKERS), key=lambda j: (free[j], j))] += work
    return {
        "serial": float(sum(units)),
        "critical_path": max(free),
        "workers": PROBE_WORKERS,
        "chunks": len(units),
    }


def sparse_stream_workload() -> tuple[list[dict], AccessPattern]:
    """A sliding-window stream with probes few and far between.

    Every tick inserts one tuple and expires the one that slid out of the
    ``SPARSE_WINDOW``-wide window; only every ``SPARSE_PROBE_EVERY``-th
    tick probes.  This is the regime where eager per-arrival posting
    maintenance is almost entirely wasted work — the lazy admission tier's
    target workload.
    """
    items = [
        {"A": i % 97, "B": (i * 7) % 89, "C": (i * 13) % 83}
        for i in range(SPARSE_STREAM_N)
    ]
    return items, AccessPattern.from_attributes(JAS, ["A", "B"])


def _run_sparse_stream(idx: InvertedListIndex) -> int:
    items, ap = sparse_stream_workload()
    for i, item in enumerate(items):
        idx.insert(item)
        if i >= SPARSE_WINDOW:
            idx.remove(items[i - SPARSE_WINDOW])
        if i % SPARSE_PROBE_EVERY == SPARSE_PROBE_EVERY - 1:
            idx.search(ap, item)
            if idx.lazy:
                idx.promote_hot(SPARSE_PROMOTE_THRESHOLD)
    return len(items)


def bench_probe_sparse_eager() -> int:
    return _run_sparse_stream(InvertedListIndex(JAS))


def bench_probe_sparse_lazy() -> int:
    idx = InvertedListIndex(JAS)
    idx.enable_lazy()
    return _run_sparse_stream(idx)


def fleet_workload_stats() -> WorkloadStatistics:
    """A budget-starved multi-pattern mix — the divergent fleet's regime.

    Four access patterns are equally frequent but an 8-bit budget cannot
    serve them all from one key map, so a complementary 3-configuration
    set beats three copies of the single best configuration by a wide
    modeled-cost margin (``fleet_cost_units`` in the output JSON).
    """
    return WorkloadStatistics(
        lambda_d=200.0,
        lambda_r=2_000.0,
        window=50.0,
        frequencies={
            AccessPattern.from_attributes(JAS, ["A"]): 0.25,
            AccessPattern.from_attributes(JAS, ["B"]): 0.25,
            AccessPattern.from_attributes(JAS, ["C"]): 0.25,
            AccessPattern.from_attributes(JAS, ["A", "B", "C"]): 0.25,
        },
        domain_bits={"A": 8, "B": 8, "C": 8},
    )


def fleet_modeled_costs() -> dict[str, float]:
    """Modeled fleet cost: divergent K-set vs K copies of the best single.

    Both fleets pay identical maintenance (arrivals replicate); the
    divergent set wins on routed search cost.  Pure cost-model arithmetic —
    machine-independent, recorded verbatim per label.
    """
    stats = fleet_workload_stats()
    divergent = select_fleet(stats, JAS, FLEET_BUDGET, FLEET_K)
    best = select_fleet(stats, JAS, FLEET_BUDGET, 1)[0]
    return {
        "divergent": round(fleet_cost(list(divergent), stats), 1),
        "single": round(fleet_cost([best] * FLEET_K, stats), 1),
    }


def fleet_router_fixture():
    """K populated bit indexes on the divergent configs + the probe mix."""
    stats = fleet_workload_stats()
    configs = select_fleet(stats, JAS, FLEET_BUDGET, FLEET_K)
    indexes = []
    for cfg in configs:
        idx = make_bit_index(JAS, cfg.bits)
        for item in make_items():
            idx.insert(item)
        indexes.append(idx)
    patterns = sorted(stats.frequencies, key=lambda p: p.mask)
    return indexes, stats, patterns


def bench_fleet_router(fixture=None) -> int:
    """Score-and-argmin routing of ``N_PROBES`` requests across the fleet.

    The router's per-request hot path: price every replica's live index
    for the probe's access pattern, pick the cheapest (index order breaks
    ties) — no engine, no state mutation, just the scoring loop.
    """
    if fixture is None:
        fixture = fleet_router_fixture()
    indexes, stats, patterns = fixture
    k = len(indexes)
    for i in range(N_PROBES):
        ap = patterns[i % len(patterns)]
        best_j = 0
        best_cost = score_index(indexes[0], ap, stats)
        for j in range(1, k):
            cost = score_index(indexes[j], ap, stats)
            if cost < best_cost:
                best_j = j
                best_cost = cost
        assert 0 <= best_j < k
    return N_PROBES


def bench_latency_p95() -> int:
    from repro.engine.slo import LatencyTracker, SloMonitor, SloSpec

    spec = SloSpec.parse("p95<=8@120")
    tracker = LatencyTracker(threshold=spec.threshold_ticks)
    monitor = SloMonitor(spec)
    n = 50_000
    per_tick = 100
    streams = ("A", "B", "C")
    for i in range(n):
        # Deterministic skewed latencies: mostly fast, a long tail.
        tracker.observe(streams[i % 3], float(splitmix64(i) % 97) / 8.0)
        if i % per_tick == per_tick - 1:
            monitor.end_tick(i // per_tick, tracker)
    tracker.quantile(0.95)
    return n


def bench_bit_index_migrate() -> int:
    idx = populated_bit_index()
    target_a = IndexConfiguration(JAS, {"A": 10, "B": 3})
    target_b = IndexConfiguration(JAS, {"B": 8, "C": 8})
    n = 10
    for i in range(n):
        idx.reconfigure(target_a if i % 2 == 0 else target_b)
    return n


def bench_end_to_end_scenario() -> int:
    from repro.experiments.golden import _small_params
    from repro.experiments.harness import run_scheme, train_initial_state
    from repro.workloads.scenarios import PaperScenario

    ticks = 60
    scenario = PaperScenario(_small_params(seed=7))
    training = train_initial_state(scenario, train_ticks=30)
    run_scheme(scenario, "amri:cdia-highest", ticks, training=training)
    return ticks


def bench_parallel_training_shared() -> int:
    from repro.experiments.parallel import RunSpec, run_parallel
    from repro.workloads.scenarios import ScenarioParams

    params = ScenarioParams(seed=5, capacity=1e9, memory_budget=1 << 30)
    specs = [
        RunSpec(params, scheme, 15, train=True, train_ticks=25)
        for scheme in ("amri:sria", "static", "scan")
    ]
    run_parallel(specs, workers=0)
    return len(specs)


BENCHMARKS: dict[str, tuple] = {
    # name -> (setup or None, body); a setup builds state excluded from timing
    "bit_index_insert": (None, bench_bit_index_insert),
    "bit_index_probe": (populated_bit_index, bench_bit_index_probe),
    "multi_hash_probe": (populated_hash_index, bench_multi_hash_probe),
    "probe_plane_serial": (populated_bit_index, bench_probe_plane_serial),
    "probe_plane_batch64": (populated_bit_index, bench_probe_plane_batch64),
    "probe_sparse_eager": (None, bench_probe_sparse_eager),
    "probe_sparse_lazy": (None, bench_probe_sparse_lazy),
    "probe_parallel_serial": (probe_parallel_fixture, bench_probe_parallel_serial),
    "probe_parallel_pool4": (probe_parallel_fixture, bench_probe_parallel_pool4),
    "bit_index_migrate": (None, bench_bit_index_migrate),
    "fleet_router": (fleet_router_fixture, bench_fleet_router),
    "latency_p95": (None, bench_latency_p95),
    "end_to_end_scenario": (None, bench_end_to_end_scenario),
    "parallel_training_shared": (None, bench_parallel_training_shared),
}

#: Benchmarks the regression checker treats as "micro paths".
MICRO_PATHS = (
    "bit_index_insert",
    "bit_index_probe",
    "multi_hash_probe",
    "probe_plane_serial",
    "probe_plane_batch64",
    "probe_sparse_eager",
    "probe_sparse_lazy",
    "probe_parallel_serial",
    "probe_parallel_pool4",
    "bit_index_migrate",
    "fleet_router",
    "latency_p95",
)


def time_benchmark(name: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall seconds for one benchmark."""
    setup, body = BENCHMARKS[name]
    times = []
    ops = 0
    for _ in range(repeats):
        args = (setup(),) if setup is not None else ()
        start = time.perf_counter()
        ops = body(*args)
        times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "seconds": round(best, 6),
        "ops": ops,
        "per_op_us": round(best / max(ops, 1) * 1e6, 3),
        "repeats": repeats,
    }


# --------------------------------------------------------------------- #
# dataclass footprint


def _footprint_samples() -> dict[str, tuple]:
    """(factory, count) per hot dataclass; factories take the instance index
    so every instance is distinct (no interning illusions)."""
    from repro.core.bit_index import MigrationReport
    from repro.engine.kernel.stages import TickState
    from repro.engine.tracing import EngineEvent
    from repro.indexes.base import SearchOutcome

    config = IndexConfiguration(JAS, {"A": 8})

    return {
        "SearchOutcome": (lambda i: SearchOutcome(tuples_examined=i), 20_000),
        "EngineEvent": (lambda i: EngineEvent(tick=i, kind="tune"), 20_000),
        "MigrationReport": (
            lambda i: MigrationReport(config, config, tuples_moved=i, hashes=i),
            20_000,
        ),
        "TickState": (lambda i: TickState(tick=i, duration=1), 20_000),
    }


def measure_footprint() -> dict[str, float]:
    """Traced bytes per instance of each hot dataclass."""
    out: dict[str, float] = {}
    for name, (factory, count) in _footprint_samples().items():
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        instances = [factory(i) for i in range(count)]
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del instances
        out[name] = round((after - before) / count, 1)
    return out


# --------------------------------------------------------------------- #
# output


def run_all(repeats: int) -> dict:
    benchmarks = {}
    for name in BENCHMARKS:
        benchmarks[name] = time_benchmark(name, repeats)
        print(
            f"{name:28s} {benchmarks[name]['seconds']:9.4f}s "
            f"({benchmarks[name]['per_op_us']:,.1f} us/op)"
        )
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": benchmarks,
        "footprint_bytes_per_instance": measure_footprint(),
        "fleet_cost_units": fleet_modeled_costs(),
        "probe_parallel_cost_units": probe_parallel_cost_units(),
    }


def compute_speedups(runs: dict) -> dict:
    """before/after seconds ratios (>1 means after is faster)."""
    if "before" not in runs or "after" not in runs:
        return {}
    before = runs["before"]["benchmarks"]
    after = runs["after"]["benchmarks"]
    return {
        name: round(before[name]["seconds"] / after[name]["seconds"], 2)
        for name in before
        if name in after and after[name]["seconds"] > 0
    }


def compute_batch_speedups(runs: dict) -> dict:
    """Per label: serial/batch64 probe-plane seconds (>1 = batching wins).

    Unlike ``speedup`` this compares two benchmarks *within* one run, so it
    holds machine and code version fixed — the batch plane's acceptance
    ratio, recorded for every label that ran both probe-plane benchmarks.
    """
    out = {}
    for label, run in runs.items():
        marks = run.get("benchmarks", {})
        serial = marks.get("probe_plane_serial", {}).get("seconds")
        batch = marks.get("probe_plane_batch64", {}).get("seconds")
        if serial and batch:
            out[label] = round(serial / batch, 2)
    return out


def compute_crack_speedups(runs: dict) -> dict:
    """Per label: eager/lazy probe-sparse seconds (>1 = cracking wins).

    Like ``batch_speedup`` this is a within-run ratio — machine and code
    version held fixed — comparing eager admission against the lazy tier
    on the identical probe-sparse sliding-window stream.  It is the lazy
    indexing refactor's committed acceptance evidence.
    """
    out = {}
    for label, run in runs.items():
        marks = run.get("benchmarks", {})
        eager = marks.get("probe_sparse_eager", {}).get("seconds")
        lazy = marks.get("probe_sparse_lazy", {}).get("seconds")
        if eager and lazy:
            out[label] = round(eager / lazy, 2)
    return out


def compute_fleet_speedups(runs: dict) -> dict:
    """Per label: single/divergent modeled fleet cost (>1 = divergence wins).

    A within-run ratio like ``batch_speedup`` and ``crack_speedup``, but in
    cost-model units rather than wall seconds: K copies of the best single
    configuration vs the complementary :func:`select_fleet` set on the
    same multi-pattern workload.  It is the divergent replica fleet's
    committed acceptance evidence.
    """
    out = {}
    for label, run in runs.items():
        costs = run.get("fleet_cost_units", {})
        single = costs.get("single")
        divergent = costs.get("divergent")
        if single and divergent:
            out[label] = round(single / divergent, 2)
    return out


def compute_probe_parallel_speedups(runs: dict) -> dict:
    """Per label: serial work / 4-worker critical path (>1 = the pool wins).

    A within-run ratio in measured cost-model units, like
    ``fleet_speedup``: the chunk work tallies are read off real scratch
    accountants and scheduled exactly as the pool's queue drains, so the
    ratio is the parallelism the schedule exposes — independent of how
    many cores (or how much GIL) the recording host happened to have.
    The raw wall seconds of both paths sit alongside in ``benchmarks``.
    """
    out = {}
    for label, run in runs.items():
        costs = run.get("probe_parallel_cost_units", {})
        serial = costs.get("serial")
        critical = costs.get("critical_path")
        if serial and critical:
            out[label] = round(serial / critical, 2)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="after", help="run label to record (before/after/ci/...)"
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_wall.json",
        help="JSON file to merge the run into",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repetitions per benchmark (min is kept)"
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of benchmark names to run (default: all)",
    )
    args = parser.parse_args(argv)

    if args.only:
        unknown = set(args.only) - set(BENCHMARKS)
        if unknown:
            parser.error(f"unknown benchmarks: {sorted(unknown)}")
        for name in list(BENCHMARKS):
            if name not in args.only:
                del BENCHMARKS[name]

    doc = {"schema": "bench-wall/v1", "runs": {}}
    if args.output.exists():
        doc = json.loads(args.output.read_text())
        doc.setdefault("runs", {})

    run = run_all(args.repeats)
    existing = doc["runs"].get(args.label, {})
    if existing.get("benchmarks") and args.only:
        # A partial run refreshes only the benchmarks it executed; any
        # other recorded sections the label already had are preserved.
        existing["benchmarks"].update(run["benchmarks"])
        run["benchmarks"] = existing["benchmarks"]
        for key, value in existing.items():
            run.setdefault(key, value)
    doc["runs"][args.label] = run
    doc["speedup"] = compute_speedups(doc["runs"])
    doc["batch_speedup"] = compute_batch_speedups(doc["runs"])
    doc["crack_speedup"] = compute_crack_speedups(doc["runs"])
    doc["fleet_speedup"] = compute_fleet_speedups(doc["runs"])
    doc["probe_parallel_speedup"] = compute_probe_parallel_speedups(doc["runs"])

    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nrecorded run {args.label!r} in {args.output}")
    if doc["speedup"]:
        for name, ratio in sorted(doc["speedup"].items()):
            print(f"speedup {name:28s} {ratio:5.2f}x")
    for label, ratio in sorted(doc["batch_speedup"].items()):
        print(f"batch_speedup[{label}] {ratio:5.2f}x (serial / batch64 probe plane)")
    for label, ratio in sorted(doc["crack_speedup"].items()):
        print(f"crack_speedup[{label}] {ratio:5.2f}x (eager / lazy sparse stream)")
    for label, ratio in sorted(doc["fleet_speedup"].items()):
        print(f"fleet_speedup[{label}] {ratio:5.2f}x (single / divergent modeled cost)")
    for label, ratio in sorted(doc["probe_parallel_speedup"].items()):
        print(
            f"probe_parallel_speedup[{label}] {ratio:5.2f}x "
            f"(serial / {PROBE_WORKERS}-worker critical path)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
