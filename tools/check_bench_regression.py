#!/usr/bin/env python
"""Gate benchmark regressions on *cost units*, not wall-clock noise.

``python tools/check_bench_regression.py BASELINE.json NEW.json`` compares
the deterministic ``extra_info["cost_units"]`` recorded by
``benchmarks/test_micro_index_ops.py`` (see its module docstring) between
two ``pytest-benchmark --benchmark-json`` exports.  Cost units count model
operations, so on identical code the two files agree exactly; any drift
beyond ``--tolerance`` (relative) means an index hot path genuinely got
more expensive and the check exits 1.

``--metrics PATH`` additionally writes the comparison as a metrics
snapshot (JSONL, via :mod:`repro.engine.metrics_export`) so CI can upload
it as an artifact alongside the raw benchmark JSON.

Wall-clock stats are reported for context but never gate in this mode: CI
runners are too noisy for tight timing thresholds to be trustworthy.

``--wall`` switches both inputs to ``bench-wall/v1`` documents (from
``tools/bench_wall.py``) and compares best-of-N wall seconds on the
**micro paths only** (``bench_wall.MICRO_PATHS`` — insert/probe/migrate
kernels, no experiment-scale runs).  The tolerance is deliberately loose
(default 25%, ``--tolerance`` overrides): it will not catch a 5% slowdown,
but it does catch an optimisation being accidentally reverted — which on
these paths costs 2x+, far outside runner noise.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path


def _micro_paths() -> tuple[str, ...]:
    """The gated micro benchmarks, as declared by the wall bench tool."""
    tool = Path(__file__).resolve().parent / "bench_wall.py"
    spec = importlib.util.spec_from_file_location("bench_wall", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.MICRO_PATHS


def load_wall_seconds(path: Path, label: str) -> dict[str, float]:
    """Micro-path wall times (in ms, for readable output) from one run
    label of a ``bench-wall/v1`` doc."""
    doc = json.loads(path.read_text())
    if doc.get("schema") != "bench-wall/v1":
        raise SystemExit(f"{path}: not a bench-wall/v1 document")
    runs = doc.get("runs", {})
    if label not in runs:
        raise SystemExit(f"{path}: no run labelled {label!r} (have {sorted(runs)})")
    micro = _micro_paths()
    return {
        name: float(bench["seconds"]) * 1e3
        for name, bench in runs[label]["benchmarks"].items()
        if name in micro
    }


def load_cost_units(path: Path) -> dict[str, float]:
    """Map benchmark name -> recorded cost units (benchmarks lacking the
    ``cost_units`` extra_info — e.g. assessors, which have no accountant —
    are simply not comparable and are skipped)."""
    data = json.loads(path.read_text())
    out: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        cost = bench.get("extra_info", {}).get("cost_units")
        if cost is not None:
            out[bench["name"]] = float(cost)
    return out


def load_mean_seconds(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {
        b["name"]: float(b["stats"]["mean"])
        for b in data.get("benchmarks", [])
        if "stats" in b
    }


def compare(
    baseline: dict[str, float], new: dict[str, float], tolerance: float
) -> tuple[list[tuple[str, float, float, float]], list[str]]:
    """Return (regressions, messages).  A regression is ``(name, base,
    new, rel_change)`` with ``rel_change > tolerance``; improvements and
    in-tolerance drift only produce messages."""
    regressions: list[tuple[str, float, float, float]] = []
    messages: list[str] = []
    for name in sorted(baseline):
        if name not in new:
            messages.append(f"MISSING  {name}: present in baseline, absent in new run")
            continue
        base, cur = baseline[name], new[name]
        rel = (cur - base) / max(abs(base), 1e-12)
        if rel > tolerance:
            regressions.append((name, base, cur, rel))
        elif rel < -tolerance:
            messages.append(f"IMPROVED {name}: {base:,.2f} -> {cur:,.2f} ({rel:+.1%})")
        else:
            messages.append(f"OK       {name}: {base:,.2f} -> {cur:,.2f} ({rel:+.1%})")
    for name in sorted(set(new) - set(baseline)):
        messages.append(f"NEW      {name}: {new[name]:,.2f} (no baseline; not gated)")
    return regressions, messages


def write_metrics_jsonl(
    path: Path,
    baseline: dict[str, float],
    new: dict[str, float],
    new_means: dict[str, float],
) -> None:
    """Export the comparison through the repo's own metrics pipeline."""
    from repro.engine.metrics import MetricsRegistry
    from repro.engine.metrics_export import write_metrics

    registry = MetricsRegistry()
    for name, cost in sorted(new.items()):
        registry.counter(
            "bench_cost_units", "deterministic cost units per benchmark", bench=name
        ).inc(cost)
        base = baseline.get(name)
        if base is not None:
            registry.gauge(
                "bench_cost_units_baseline", "committed baseline cost units", bench=name
            ).set(base)
    for name, mean in sorted(new_means.items()):
        registry.gauge(
            "bench_mean_seconds", "wall-clock mean (context only, not gated)", bench=name
        ).set(mean)
    write_metrics(path, registry.snapshot())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_micro.json")
    parser.add_argument("new", type=Path, help="fresh --benchmark-json export")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="max tolerated relative increase (default 0.05; 0.25 with --wall)",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, help="write comparison as metrics JSONL"
    )
    parser.add_argument(
        "--wall",
        action="store_true",
        help="inputs are bench-wall/v1 docs; gate wall seconds on micro paths",
    )
    parser.add_argument(
        "--baseline-label", default="after", help="run label in the baseline wall doc"
    )
    parser.add_argument(
        "--new-label", default="ci", help="run label in the new wall doc"
    )
    args = parser.parse_args(argv)
    unit = "wall-ms" if args.wall else "cost-unit"
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = 0.25 if args.wall else 0.05

    if args.wall:
        baseline = load_wall_seconds(args.baseline, args.baseline_label)
        new = load_wall_seconds(args.new, args.new_label)
    else:
        baseline = load_cost_units(args.baseline)
        new = load_cost_units(args.new)
    if not baseline or not new:
        print(
            f"no {unit} series found to compare "
            f"(baseline: {len(baseline)} series, new: {len(new)} series)",
            file=sys.stderr,
        )
        return 1

    regressions, messages = compare(baseline, new, tolerance)
    for line in messages:
        print(line)
    for name, base, cur, rel in regressions:
        print(f"REGRESSED {name}: {base:,.2f} -> {cur:,.2f} ({rel:+.1%})")

    if args.metrics is not None and not args.wall:
        write_metrics_jsonl(args.metrics, baseline, new, load_mean_seconds(args.new))
        print(f"metrics written to {args.metrics}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{tolerance:.0%} {unit} tolerance",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(new)} comparable benchmarks within {tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
